//! The typed result set a SQL plan execution produces.

use crate::metrics::QueryMetrics;
use ciao_sql::{SqlType, SqlValue};

/// One output column's name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDesc {
    /// Output name (alias or derived, e.g. `avg(score)`).
    pub name: String,
    /// Value type.
    pub ty: SqlType,
}

/// A fully materialized query answer: named+typed columns, rows, and
/// the merged execution metrics. This one type replaces the old
/// count/select split — `COUNT(*)` is simply a one-cell result.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output columns, in projection order.
    pub columns: Vec<ColumnDesc>,
    /// Result rows; each row has one [`SqlValue`] per column.
    pub rows: Vec<Vec<SqlValue>>,
    /// Merged scan counters and timings across every shard touched.
    pub metrics: QueryMetrics,
}

impl QueryResult {
    /// Renders the result as stable, diff-friendly text: a `name:type`
    /// header, then one `|`-separated line per row. Used by the golden
    /// conformance suite, so the format must stay deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{}:{}", c.name, c.ty))
            .collect();
        out.push_str(&header.join(" | "));
        for row in &self.rows {
            out.push('\n');
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let r = QueryResult {
            columns: vec![
                ColumnDesc {
                    name: "city".into(),
                    ty: SqlType::Str,
                },
                ColumnDesc {
                    name: "count(*)".into(),
                    ty: SqlType::Int,
                },
            ],
            rows: vec![
                vec![SqlValue::Str("Chicago".into()), SqlValue::Int(3)],
                vec![SqlValue::Null, SqlValue::Int(1)],
            ],
            metrics: QueryMetrics::default(),
        };
        assert_eq!(r.render(), "city:str | count(*):int\nChicago | 3\nNULL | 1");
    }
}
