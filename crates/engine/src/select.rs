//! Record materialization: `SELECT *` support.
//!
//! The paper's evaluation only measures `COUNT(*)` (it isolates scan
//! cost), but a usable system must also return rows. This module adds
//! the materializing twin of [`crate::scan`]: matching rows come back
//! as reconstructed JSON records, from both the columnar side (cheap
//! column-to-record assembly) and the parked raw side (JIT parse).
//! All skipping/pruning machinery applies unchanged.

use crate::metrics::ScanMetrics;
use crate::row_eval::eval_query_on_block;
use crate::scan::ScanOptions;
use ciao_columnar::Table;
use ciao_json::{parse, JsonValue};
use ciao_predicate::{eval_query, Query};

/// Matching rows plus scan counters.
#[derive(Debug, Clone)]
pub struct SelectResult {
    /// Reconstructed matching records, in storage order.
    pub records: Vec<JsonValue>,
    /// Scan counters (rows_matched == records.len()).
    pub metrics: ScanMetrics,
}

/// Materializes every table row satisfying `query`.
pub fn select_from_table(table: &Table, query: &Query, options: &ScanOptions) -> SelectResult {
    let mut metrics = ScanMetrics::default();
    let mut records = Vec::new();
    for block in table.blocks() {
        if options.use_zone_maps && !crate::zone::block_can_match(query, block) {
            metrics.blocks_pruned += 1;
            metrics.rows_skipped += block.row_count();
            continue;
        }
        metrics.blocks_visited += 1;
        let mask = if options.skip_predicate_ids.is_empty() {
            None
        } else {
            block.metadata().skip_mask(&options.skip_predicate_ids)
        };
        let mut visit = |row: usize, metrics: &mut ScanMetrics| {
            metrics.rows_scanned += 1;
            if eval_query_on_block(query, block, row) {
                metrics.rows_matched += 1;
                records.push(block.to_record(row));
            }
        };
        match mask {
            Some(mask) => {
                metrics.rows_skipped += mask.count_zeros();
                for row in mask.iter_ones() {
                    visit(row, &mut metrics);
                }
            }
            None => {
                for row in 0..block.row_count() {
                    visit(row, &mut metrics);
                }
            }
        }
    }
    SelectResult { records, metrics }
}

/// Materializes every parked raw record satisfying `query` (JIT parse).
pub fn select_from_raw<S: AsRef<str>>(records: &[S], query: &Query) -> SelectResult {
    let mut metrics = ScanMetrics::default();
    let mut out = Vec::new();
    for rec in records {
        metrics.records_parsed += 1;
        metrics.rows_scanned += 1;
        if let Ok(value) = parse(rec.as_ref()) {
            if eval_query(query, &value) {
                metrics.rows_matched += 1;
                out.push(value);
            }
        }
    }
    SelectResult {
        records: out,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_count;
    use ciao_columnar::{Schema, TableBuilder};
    use ciao_predicate::parse_query;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn table() -> Table {
        let recs: Vec<JsonValue> = (0..40)
            .map(|i| parse(&format!(r#"{{"stars":{},"name":"u{}"}}"#, i % 5 + 1, i)).unwrap())
            .collect();
        let schema = Arc::new(Schema::infer(&recs).unwrap());
        let mut tb = TableBuilder::with_block_size(schema, &[1], 8);
        for (i, r) in recs.iter().enumerate() {
            tb.push_record(r, &BTreeMap::from([(1, i % 5 + 1 == 5)]));
        }
        tb.finish()
    }

    #[test]
    fn select_matches_count() {
        let t = table();
        let q = parse_query("q", "stars = 5").unwrap();
        for options in [
            ScanOptions::full(),
            ScanOptions::skipping(vec![1]),
            ScanOptions::full().with_zone_maps(),
        ] {
            let count = scan_count(&t, &q, &options);
            let select = select_from_table(&t, &q, &options);
            assert_eq!(select.records.len(), count.rows_matched);
            assert_eq!(select.metrics.rows_matched, count.rows_matched);
        }
    }

    #[test]
    fn records_reconstructed_correctly() {
        let t = table();
        let q = parse_query("q", r#"name = "u14""#).unwrap();
        let res = select_from_table(&t, &q, &ScanOptions::full());
        assert_eq!(res.records.len(), 1);
        assert_eq!(
            ciao_json::to_string(&res.records[0]),
            r#"{"stars":5,"name":"u14"}"#
        );
    }

    #[test]
    fn select_from_raw_parses_and_filters() {
        let parked = vec![
            r#"{"stars":5,"name":"a"}"#.to_owned(),
            "broken {".to_owned(),
            r#"{"stars":2,"name":"b"}"#.to_owned(),
        ];
        let q = parse_query("q", "stars = 5").unwrap();
        let res = select_from_raw(&parked, &q);
        assert_eq!(res.records.len(), 1);
        assert_eq!(res.records[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(res.metrics.records_parsed, 3);
    }

    #[test]
    fn empty_inputs() {
        let q = parse_query("q", "stars = 5").unwrap();
        let res = select_from_table(&Table::default(), &q, &ScanOptions::full());
        assert!(res.records.is_empty());
        let raw = select_from_raw::<String>(&[], &q);
        assert!(raw.records.is_empty());
    }
}
