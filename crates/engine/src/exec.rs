//! The executor: route a query across the columnar and parked sides.

use crate::metrics::QueryMetrics;
use crate::raw_scan::scan_raw_records;
use crate::scan::{scan_count, ScanOptions};
use ciao_columnar::Table;
use ciao_predicate::{Clause, Query};
use std::collections::HashMap;
use std::time::Instant;

/// The result of one `COUNT(*)` execution.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// The count.
    pub count: usize,
    /// Detailed counters and timing.
    pub metrics: QueryMetrics,
}

impl QueryOutcome {
    /// Merges a per-shard outcome into this one: counts add, metrics
    /// merge per [`QueryMetrics::merge`]. A multi-shard service folds
    /// shard outcomes into [`QueryOutcome::default`] to answer as if
    /// one server held all the data.
    pub fn merge(&mut self, other: &QueryOutcome) {
        self.count += other.count;
        self.metrics.merge(&other.metrics);
    }
}

/// Executes count queries against a (columnar table, parked raw
/// records) pair, given the server's pushed-predicate registry.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    /// Pushed clause → predicate id (the server's predicate hashmap,
    /// paper §VI).
    pushed: HashMap<Clause, u32>,
}

impl Executor {
    /// Creates an executor with the pushed-predicate registry.
    pub fn new(pushed: impl IntoIterator<Item = (Clause, u32)>) -> Executor {
        Executor {
            pushed: pushed.into_iter().collect(),
        }
    }

    /// The registry size.
    pub fn pushed_count(&self) -> usize {
        self.pushed.len()
    }

    /// Whether this exact clause is in the pushed-predicate registry.
    pub fn is_pushed(&self, clause: &Clause) -> bool {
        self.pushed.contains_key(clause)
    }

    /// Ids of the query's clauses that were pushed down.
    pub fn pushed_ids_for(&self, query: &Query) -> Vec<u32> {
        let mut ids: Vec<u32> = query
            .clauses
            .iter()
            .filter_map(|c| self.pushed.get(c).copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Executes `SELECT COUNT(*) WHERE query` over the table plus the
    /// parked raw records.
    ///
    /// Routing per paper §VI-B:
    /// * query has ≥1 pushed clause → scan only the columnar side with
    ///   the pushed bitvectors as a skip mask (no parked record can
    ///   satisfy a pushed clause, so the parked side contributes 0);
    /// * no pushed clause → full columnar scan **plus** JIT parse-scan
    ///   of every parked record.
    pub fn execute_count<S: AsRef<str>>(
        &self,
        table: &Table,
        parked: &[S],
        query: &Query,
    ) -> QueryOutcome {
        let start = Instant::now();
        let pushed_ids = self.pushed_ids_for(query);
        let mut metrics = QueryMetrics::default();

        // Zone maps are always sound, so both paths enable them.
        if pushed_ids.is_empty() {
            metrics.table_scan = scan_count(table, query, &ScanOptions::full().with_zone_maps());
            metrics.table_scan_time = start.elapsed();
            let raw_start = Instant::now();
            metrics.raw_scan = scan_raw_records(parked, query);
            metrics.raw_scan_time = raw_start.elapsed();
            metrics.scanned_parked = true;
            metrics.used_skipping = false;
        } else {
            metrics.table_scan = scan_count(
                table,
                query,
                &ScanOptions::skipping(pushed_ids).with_zone_maps(),
            );
            metrics.table_scan_time = start.elapsed();
            metrics.scanned_parked = false;
            metrics.used_skipping = true;
        }

        metrics.elapsed = start.elapsed();
        QueryOutcome {
            count: metrics.total_matched(),
            metrics,
        }
    }

    /// Executes `SELECT * WHERE query`, materializing matching records
    /// from both sides with the same routing as
    /// [`Executor::execute_count`].
    pub fn execute_select<S: AsRef<str>>(
        &self,
        table: &Table,
        parked: &[S],
        query: &Query,
    ) -> (Vec<ciao_json::JsonValue>, QueryMetrics) {
        use crate::select::{select_from_raw, select_from_table};
        let start = Instant::now();
        let pushed_ids = self.pushed_ids_for(query);
        let mut metrics = QueryMetrics::default();
        let mut records;
        if pushed_ids.is_empty() {
            let t = select_from_table(table, query, &ScanOptions::full().with_zone_maps());
            metrics.table_scan_time = start.elapsed();
            let raw_start = Instant::now();
            let r = select_from_raw(parked, query);
            metrics.raw_scan_time = raw_start.elapsed();
            metrics.table_scan = t.metrics;
            metrics.raw_scan = r.metrics;
            metrics.scanned_parked = true;
            records = t.records;
            records.extend(r.records);
        } else {
            let t = select_from_table(
                table,
                query,
                &ScanOptions::skipping(pushed_ids).with_zone_maps(),
            );
            metrics.table_scan_time = start.elapsed();
            metrics.table_scan = t.metrics;
            metrics.used_skipping = true;
            records = t.records;
        }
        metrics.elapsed = start.elapsed();
        (records, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_columnar::{Schema, TableBuilder};
    use ciao_json::{parse, JsonValue};
    use ciao_predicate::{parse_clause, parse_query};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Environment mimicking a partial load: records with stars = 5
    /// were admitted into the table (their predicate-1 bits exact);
    /// everything else was parked as raw JSON.
    struct Env {
        table: ciao_columnar::Table,
        parked: Vec<String>,
        exec: Executor,
    }

    fn env() -> Env {
        let all: Vec<JsonValue> = (0..50)
            .map(|i| parse(&format!(r#"{{"name":"u{}","stars":{}}}"#, i, i % 5 + 1)).unwrap())
            .collect();
        let schema = Arc::new(Schema::infer(&all).unwrap());
        let mut tb = TableBuilder::with_block_size(schema, &[1], 8);
        let mut parked = Vec::new();
        for rec in &all {
            let stars = rec.get("stars").unwrap().as_i64().unwrap();
            if stars == 5 {
                tb.push_record(rec, &BTreeMap::from([(1, true)]));
            } else {
                parked.push(ciao_json::to_string(rec));
            }
        }
        let exec = Executor::new([(parse_clause("stars = 5").unwrap(), 1)]);
        Env {
            table: tb.finish(),
            parked,
            exec,
        }
    }

    #[test]
    fn covered_query_skips_parked_side() {
        let e = env();
        let q = parse_query("q", "stars = 5").unwrap();
        let out = e.exec.execute_count(&e.table, &e.parked, &q);
        assert_eq!(out.count, 10);
        assert!(out.metrics.used_skipping);
        assert!(!out.metrics.scanned_parked);
        assert_eq!(out.metrics.raw_scan.records_parsed, 0);
        // No fallback ran, so no fallback time was spent.
        assert_eq!(out.metrics.raw_scan_time, std::time::Duration::ZERO);
        assert!(out.metrics.table_scan_time <= out.metrics.elapsed);
    }

    #[test]
    fn uncovered_query_scans_both_sides() {
        let e = env();
        let q = parse_query("q", "stars = 3").unwrap();
        let out = e.exec.execute_count(&e.table, &e.parked, &q);
        assert_eq!(out.count, 10); // all stars=3 records are parked
        assert!(!out.metrics.used_skipping);
        assert!(out.metrics.scanned_parked);
        assert_eq!(out.metrics.raw_scan.records_parsed, 40);
        assert_eq!(out.metrics.raw_scan.rows_matched, 10);
        assert_eq!(out.metrics.table_scan.rows_matched, 0);
        // The JIT parse-scan fallback is timed separately.
        assert!(out.metrics.raw_scan_time > std::time::Duration::ZERO);
    }

    #[test]
    fn covered_conjunction_uses_all_pushed_ids() {
        let e = env();
        let q = parse_query("q", r#"stars = 5 AND name = "u4""#).unwrap();
        let ids = e.exec.pushed_ids_for(&q);
        assert_eq!(ids, vec![1]); // only the stars clause is pushed
        let out = e.exec.execute_count(&e.table, &e.parked, &q);
        assert_eq!(out.count, 1);
        assert!(out.metrics.used_skipping);
    }

    #[test]
    fn executor_equivalence_with_ground_truth() {
        // For any query, CIAO's answer must equal a naive scan over all
        // 50 original records.
        let e = env();
        for text in [
            "stars = 5",
            "stars = 2",
            r#"name = "u7""#,
            "stars = 5 AND stars = 5",
        ] {
            let q = parse_query("q", text).unwrap();
            let truth = (0..50)
                .filter(|i| {
                    let rec =
                        parse(&format!(r#"{{"name":"u{}","stars":{}}}"#, i, i % 5 + 1)).unwrap();
                    ciao_predicate::eval_query(&q, &rec)
                })
                .count();
            let out = e.exec.execute_count(&e.table, &e.parked, &q);
            assert_eq!(out.count, truth, "divergence on {text}");
        }
    }

    #[test]
    fn empty_registry_always_scans_everything() {
        let e = env();
        let exec = Executor::default();
        assert_eq!(exec.pushed_count(), 0);
        let q = parse_query("q", "stars = 5").unwrap();
        let out = exec.execute_count(&e.table, &e.parked, &q);
        assert_eq!(out.count, 10);
        assert!(out.metrics.scanned_parked);
    }

    #[test]
    fn duplicate_pushed_clauses_dedup() {
        let e = env();
        let q = parse_query("q", "stars = 5 AND stars = 5").unwrap();
        assert_eq!(e.exec.pushed_ids_for(&q), vec![1]);
    }

    #[test]
    fn sharded_outcomes_merge_to_the_unsharded_answer() {
        // Split the environment's 50 records across two "shards" and
        // check that merged per-shard outcomes equal the one-server run.
        let e = env();
        let q = parse_query("q", "stars = 3").unwrap();
        let whole = e.exec.execute_count(&e.table, &e.parked, &q);

        let (left, right) = e.parked.split_at(e.parked.len() / 2);
        let mut merged = QueryOutcome::default();
        merged.merge(&e.exec.execute_count(&e.table, left, &q));
        merged.merge(
            &e.exec
                .execute_count(&ciao_columnar::Table::default(), right, &q),
        );
        assert_eq!(merged.count, whole.count);
        assert_eq!(
            merged.metrics.raw_scan.records_parsed,
            whole.metrics.raw_scan.records_parsed
        );
        assert!(merged.metrics.scanned_parked);
    }

    #[test]
    fn select_matches_count_on_both_paths() {
        let e = env();
        for text in ["stars = 5", "stars = 3", r#"name = "u7""#] {
            let q = parse_query("q", text).unwrap();
            let count = e.exec.execute_count(&e.table, &e.parked, &q);
            let (records, metrics) = e.exec.execute_select(&e.table, &e.parked, &q);
            assert_eq!(
                records.len(),
                count.count,
                "select/count diverged on {text}"
            );
            assert_eq!(metrics.total_matched(), count.count);
            // Every returned record genuinely satisfies the query.
            for r in &records {
                assert!(ciao_predicate::eval_query(&q, r));
            }
        }
    }
}
