//! Just-in-time scan over parked raw JSON records.
//!
//! Records that partial loading left unconverted are still part of the
//! logical table. When a query has no pushed clause, the engine must
//! parse each parked record (paying the full parse cost that loading
//! deferred) and evaluate the query on the DOM (paper §VI-B, final
//! paragraph).

use crate::metrics::ScanMetrics;
use ciao_json::parse;
use ciao_predicate::{eval_query, Query};

/// Counts parked records satisfying `query`, parsing each on demand.
///
/// Unparseable records are counted in `records_parsed` but never match
/// — a malformed log line cannot satisfy a predicate, and dropping the
/// whole scan for one bad record would be wrong for this domain.
pub fn scan_raw_records<S: AsRef<str>>(records: &[S], query: &Query) -> ScanMetrics {
    let mut metrics = ScanMetrics::default();
    for rec in records {
        metrics.records_parsed += 1;
        metrics.rows_scanned += 1;
        match parse(rec.as_ref()) {
            Ok(value) => {
                if eval_query(query, &value) {
                    metrics.rows_matched += 1;
                }
            }
            Err(_) => {
                // Malformed parked record: cannot match anything.
            }
        }
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_predicate::parse_query;

    #[test]
    fn counts_matches() {
        let records = vec![
            r#"{"stars":5}"#.to_owned(),
            r#"{"stars":3}"#.to_owned(),
            r#"{"stars":5,"x":1}"#.to_owned(),
        ];
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_raw_records(&records, &q);
        assert_eq!(m.rows_matched, 2);
        assert_eq!(m.records_parsed, 3);
    }

    #[test]
    fn malformed_records_never_match() {
        let records = vec![
            "not json".to_owned(),
            r#"{"stars":5}"#.to_owned(),
            r#"{"stars":"#.to_owned(),
        ];
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_raw_records(&records, &q);
        assert_eq!(m.rows_matched, 1);
        assert_eq!(m.records_parsed, 3);
    }

    #[test]
    fn empty_store() {
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_raw_records::<String>(&[], &q);
        assert_eq!(m.rows_matched, 0);
        assert_eq!(m.records_parsed, 0);
    }
}
