//! Per-query execution profiles: attributable, mergeable evidence of
//! what the data-skipping machinery did for *one* statement.
//!
//! [`crate::QueryMetrics`] already counts scans and skips in
//! aggregate; [`QueryProfile`] splits the same execution into the
//! stories EXPLAIN ANALYZE and the service's workload collector need:
//! blocks pruned by zone maps vs. blocks whose pushed skip-mask was
//! all-zero, rows skipped by each mechanism, the parked JIT fallback,
//! and a per-WHERE-clause hit/selectivity counter pair. Profiles merge
//! across shards exactly like [`crate::PartialResult`]s (counters add,
//! clauses combine positionally), and
//! [`QueryProfile::reconciles_with`] pins the invariant that the
//! profile never disagrees with the metrics it refines.

use crate::metrics::QueryMetrics;

/// Observed behavior of one WHERE clause during a plan execution.
///
/// `rows_evaluated` counts rows on which this clause actually ran —
/// under conjunctive short-circuiting a clause is only reached when
/// every earlier clause passed, so later clauses see a pre-filtered
/// stream and their selectivity is *conditional* on clause order.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseProfile {
    /// The clause's canonical text (`ciao_predicate::Clause` display
    /// form, e.g. `stars = 5` or `(city = "a" OR city = "b")`).
    pub text: String,
    /// Whether the clause rode a pushed client bitvector.
    pub pushed: bool,
    /// Rows the clause was evaluated on (table + parked fallback).
    pub rows_evaluated: u64,
    /// Rows that passed the clause.
    pub rows_passed: u64,
}

impl ClauseProfile {
    /// Observed selectivity (`rows_passed / rows_evaluated`), `None`
    /// until the clause has been evaluated at least once.
    pub fn selectivity(&self) -> Option<f64> {
        (self.rows_evaluated > 0).then(|| self.rows_passed as f64 / self.rows_evaluated as f64)
    }

    /// Adds another shard's counters for the same clause.
    pub fn merge(&mut self, other: &ClauseProfile) {
        debug_assert_eq!(
            self.text, other.text,
            "merging profiles of different clauses"
        );
        self.pushed |= other.pushed;
        self.rows_evaluated += other.rows_evaluated;
        self.rows_passed += other.rows_passed;
    }
}

/// Per-stage and per-block execution stats for one plan execution.
///
/// Produced by `Executor::execute_plan` alongside the partial result;
/// shards' profiles merge into the query-wide profile the same way
/// their partials do.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryProfile {
    /// Sealed blocks considered (pruned + visited).
    pub blocks_total: u64,
    /// Blocks skipped wholesale by zone maps (never opened).
    pub blocks_pruned_zone: u64,
    /// Visited blocks whose fused skip-mask was all-zero — opened, but
    /// not a single row was fed to the operator.
    pub blocks_pruned_mask: u64,
    /// Rows inside zone-pruned blocks.
    pub rows_skipped_zone: u64,
    /// Rows skipped by skip-mask zero bits inside visited blocks.
    pub rows_skipped_mask: u64,
    /// Columnar rows actually fed to predicate evaluation.
    pub rows_scanned: u64,
    /// Columnar rows that satisfied every clause.
    pub rows_matched: u64,
    /// Parked raw records JIT-parsed by the fallback scan (0 whenever
    /// ≥1 clause was pushed).
    pub parked_rows_parsed: u64,
    /// Parked rows that satisfied every clause.
    pub parked_rows_matched: u64,
    /// One entry per WHERE clause, in plan order.
    pub clauses: Vec<ClauseProfile>,
}

impl QueryProfile {
    /// Total rows matched across both sides (the answer's cardinality
    /// before grouping/limit).
    pub fn total_matched(&self) -> u64 {
        self.rows_matched + self.parked_rows_matched
    }

    /// Folds another shard's profile in: counters add, clauses merge
    /// positionally (both sides ran the same plan). An empty clause
    /// list (the merge identity) adopts the other side's clauses.
    pub fn merge(&mut self, other: &QueryProfile) {
        self.blocks_total += other.blocks_total;
        self.blocks_pruned_zone += other.blocks_pruned_zone;
        self.blocks_pruned_mask += other.blocks_pruned_mask;
        self.rows_skipped_zone += other.rows_skipped_zone;
        self.rows_skipped_mask += other.rows_skipped_mask;
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        self.parked_rows_parsed += other.parked_rows_parsed;
        self.parked_rows_matched += other.parked_rows_matched;
        if self.clauses.is_empty() {
            self.clauses = other.clauses.clone();
        } else if !other.clauses.is_empty() {
            debug_assert_eq!(self.clauses.len(), other.clauses.len());
            for (cur, inc) in self.clauses.iter_mut().zip(&other.clauses) {
                cur.merge(inc);
            }
        }
    }

    /// True when this profile exactly refines `metrics` from the same
    /// execution: the zone-pruned block count, the zone+mask row-skip
    /// split, the scanned/matched row counts, and the parked fallback
    /// all reconcile. The EXPLAIN ANALYZE e2e suite asserts this
    /// across shard merges.
    pub fn reconciles_with(&self, metrics: &QueryMetrics) -> bool {
        self.blocks_pruned_zone == metrics.table_scan.blocks_pruned as u64
            && self.blocks_total
                == (metrics.table_scan.blocks_pruned + metrics.table_scan.blocks_visited) as u64
            && self.rows_skipped_zone + self.rows_skipped_mask
                == metrics.table_scan.rows_skipped as u64
            && self.rows_scanned == metrics.table_scan.rows_scanned as u64
            && self.rows_matched == metrics.table_scan.rows_matched as u64
            && self.parked_rows_parsed == metrics.raw_scan.records_parsed as u64
            && self.parked_rows_matched == metrics.raw_scan.rows_matched as u64
            && self.total_matched() == metrics.total_matched() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(text: &str, evaluated: u64, passed: u64) -> ClauseProfile {
        ClauseProfile {
            text: text.to_owned(),
            pushed: false,
            rows_evaluated: evaluated,
            rows_passed: passed,
        }
    }

    #[test]
    fn selectivity_is_passed_over_evaluated() {
        assert_eq!(clause("a = 1", 0, 0).selectivity(), None);
        assert_eq!(clause("a = 1", 10, 4).selectivity(), Some(0.4));
    }

    #[test]
    fn merge_adds_counters_and_combines_clauses_positionally() {
        let mut a = QueryProfile {
            blocks_total: 3,
            blocks_pruned_zone: 1,
            rows_skipped_zone: 16,
            rows_scanned: 20,
            rows_matched: 5,
            clauses: vec![clause("a = 1", 20, 5)],
            ..QueryProfile::default()
        };
        let b = QueryProfile {
            blocks_total: 2,
            rows_scanned: 10,
            rows_matched: 2,
            parked_rows_parsed: 7,
            parked_rows_matched: 1,
            clauses: vec![clause("a = 1", 17, 7)],
            ..QueryProfile::default()
        };
        a.merge(&b);
        assert_eq!(a.blocks_total, 5);
        assert_eq!(a.rows_scanned, 30);
        assert_eq!(a.total_matched(), 8);
        assert_eq!(a.clauses[0].rows_evaluated, 37);
        assert_eq!(a.clauses[0].rows_passed, 12);

        // The merge identity adopts the other side's clause list.
        let mut identity = QueryProfile::default();
        identity.merge(&a);
        assert_eq!(identity, a);
    }
}
