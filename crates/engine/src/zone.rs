//! Zone-map block pruning.
//!
//! Blocks already carry per-column min/max and null counts
//! ([`ciao_columnar::ColumnStats`]); classic data-skipping systems
//! (Sun et al., cited by the paper as the data-skipping lineage) use
//! exactly this metadata to skip whole blocks. This module adds that
//! layer *under* CIAO's bitvector skipping: a block is pruned when the
//! query is **provably false for every row** of the block.
//!
//! Pruning is conservative — "don't know" always means "scan". Rules,
//! per simple predicate, for "false on every row":
//!
//! | predicate | provably false for the block when |
//! |---|---|
//! | `k = v` (int)  | column absent, all-null, or `v ∉ [min,max]` |
//! | `k < v`        | column absent, all-null, or `min ≥ v` |
//! | `k > v`        | column absent, all-null, or `max ≤ v` |
//! | `k != NULL`    | column absent or all-null |
//! | `k = "v"`      | column absent, all-null, or the chunk's complete string dictionary lacks `v` |
//! | `k LIKE "%v%"` | column absent, all-null, or no dictionary entry contains `v` |
//! | anything else  | never (no stats for bools/floats) |
//!
//! The string rules piggyback on the dictionary the on-disk format
//! already builds for low-cardinality columns
//! ([`ciao_columnar::ColumnStats::str_dict`]); a high-cardinality chunk
//! simply has no dictionary and is never pruned.
//!
//! A clause (disjunction) is block-false iff **every** disjunct is;
//! a query is block-false iff **any** clause is (conjunction).

use ciao_columnar::Block;
use ciao_predicate::{Clause, Query, SimplePredicate};

/// True when the block might contain a row satisfying the query.
pub fn block_can_match(query: &Query, block: &Block) -> bool {
    !query
        .clauses
        .iter()
        .any(|c| clause_false_for_block(c, block))
}

/// True when no row of the block can satisfy the clause.
fn clause_false_for_block(clause: &Clause, block: &Block) -> bool {
    clause
        .disjuncts()
        .iter()
        .all(|p| simple_false_for_block(p, block))
}

fn simple_false_for_block(p: &SimplePredicate, block: &Block) -> bool {
    let stats_for = |key: &str| {
        block
            .schema()
            .index_of(key)
            .map(|i| &block.metadata().column_stats[i])
    };
    let all_null = |key: &str| match stats_for(key) {
        None => true, // column absent: every cell reads NULL
        Some(s) => s.null_count == block.row_count(),
    };
    match p {
        SimplePredicate::IntEq { key, value } => {
            if all_null(key) {
                return true;
            }
            match stats_for(key) {
                Some(s) => match (s.min_int, s.max_int) {
                    (Some(min), Some(max)) => *value < min || *value > max,
                    // Non-int column (or no int rows): IntEq can never
                    // hold on typed evaluation.
                    _ => true,
                },
                None => true,
            }
        }
        SimplePredicate::IntLt { key, value } => {
            if all_null(key) {
                return true;
            }
            match stats_for(key).and_then(|s| s.min_int) {
                Some(min) => min >= *value,
                None => true,
            }
        }
        SimplePredicate::IntGt { key, value } => {
            if all_null(key) {
                return true;
            }
            match stats_for(key).and_then(|s| s.max_int) {
                Some(max) => max <= *value,
                None => true,
            }
        }
        SimplePredicate::NotNull { key } => all_null(key),
        SimplePredicate::StrEq { key, value } => {
            all_null(key) || stats_for(key).is_some_and(|s| s.str_excludes(value))
        }
        SimplePredicate::StrContains { key, needle } => {
            all_null(key) || stats_for(key).is_some_and(|s| s.str_excludes_substring(needle))
        }
        // No block statistics for bool/float columns.
        SimplePredicate::BoolEq { .. } | SimplePredicate::FloatEq { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_columnar::{Schema, TableBuilder};
    use ciao_json::parse;
    use ciao_predicate::parse_query;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// One block with stars ∈ [3, 7], a nullable email, and a name.
    fn block() -> ciao_columnar::Table {
        let recs: Vec<_> = [
            r#"{"stars":3,"name":"a","email":"x@y"}"#,
            r#"{"stars":7,"name":"b"}"#,
            r#"{"stars":5,"name":"c"}"#,
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let schema = Arc::new(Schema::infer(&recs).unwrap());
        let mut tb = TableBuilder::new(schema, &[]);
        for r in &recs {
            tb.push_record(r, &BTreeMap::new());
        }
        tb.finish()
    }

    fn can_match(q: &str) -> bool {
        let t = block();
        block_can_match(&parse_query("q", q).unwrap(), &t.blocks()[0])
    }

    #[test]
    fn int_eq_range_pruning() {
        assert!(can_match("stars = 5"));
        assert!(can_match("stars = 3"));
        assert!(can_match("stars = 7"));
        assert!(!can_match("stars = 2"));
        assert!(!can_match("stars = 8"));
        assert!(
            can_match("stars = 4"),
            "inside range: must scan even if absent"
        );
    }

    #[test]
    fn range_pruning() {
        assert!(!can_match("stars < 3"));
        assert!(can_match("stars < 4"));
        assert!(!can_match("stars > 7"));
        assert!(can_match("stars > 6"));
    }

    #[test]
    fn missing_and_null_columns() {
        assert!(!can_match("absent_col = 5"));
        assert!(!can_match("absent_col != NULL"));
        assert!(can_match("email != NULL")); // one non-null email
                                             // Int predicate over a string column can never hold.
        assert!(!can_match("name = 5"));
    }

    #[test]
    fn conjunction_prunes_if_any_clause_is_false() {
        assert!(!can_match("stars = 5 AND stars = 99"));
        assert!(can_match("stars = 5 AND stars = 7"));
    }

    #[test]
    fn disjunction_needs_all_disjuncts_false() {
        assert!(can_match("stars IN (99, 5)"));
        assert!(!can_match("stars IN (99, 100)"));
    }

    #[test]
    fn string_dictionary_pruning() {
        // names are {"a","b","c"} — low cardinality, so the chunk has a
        // complete dictionary and absent values prune the block.
        assert!(can_match(r#"name = "a""#));
        assert!(!can_match(r#"name = "zzz""#));
        assert!(can_match(r#"name LIKE "%a%""#));
        assert!(!can_match(r#"name LIKE "%zzz%""#));
        // Disjunction: one live disjunct keeps the block.
        assert!(can_match(r#"name IN ("zzz", "b")"#));
    }

    #[test]
    fn high_cardinality_strings_always_scan() {
        let recs: Vec<_> = (0..100)
            .map(|i| parse(&format!(r#"{{"name":"unique-{i}"}}"#)).unwrap())
            .collect();
        let schema = Arc::new(Schema::infer(&recs).unwrap());
        let mut tb = TableBuilder::new(schema, &[]);
        for r in &recs {
            tb.push_record(r, &BTreeMap::new());
        }
        let t = tb.finish();
        let q = parse_query("q", r#"name = "zzz""#).unwrap();
        // >32 distinct strings: no dictionary, must scan.
        assert!(block_can_match(&q, &t.blocks()[0]));
    }

    #[test]
    fn unprunable_types_always_scan() {
        assert!(can_match("stars = 5.0")); // FloatEq has no stats
    }
}
