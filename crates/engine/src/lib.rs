//! CIAO's query execution engine (the repo's Spark substitute).
//!
//! The paper integrates data skipping into Spark 2.4's scan: for every
//! `SELECT COUNT(*) … WHERE <conjunctive predicates>` query it (a)
//! looks up which of the query's clauses were pushed down, (b) ANDs
//! their per-block bitvectors into a skip mask, (c) scans only the
//! surviving rows, and (d) **re-verifies every clause** on each
//! survivor, because client bits admit false positives (§VI-B).
//!
//! Two scan paths exist:
//!
//! * [`scan`] — over the columnar table, with optional skipping;
//! * [`raw_scan`] — over parked raw JSON records, each JIT-parsed then
//!   evaluated. This path runs only when a query has **no** pushed
//!   clause: if any clause was pushed, no parked record can satisfy it
//!   (no false negatives), so the parked side is skipped wholesale.
//!
//! [`exec::Executor`] ties the two together and reports [`metrics`].
//!
//! On top of the count/select primitives sits the SQL execution layer
//! ([`plan_exec`], [`result`]): [`Executor::execute_plan`] runs a
//! `ciao_sql` physical plan (projection or grouped aggregation) over
//! the same two paths — consuming zone maps and fused bitvec
//! skip-masks so data skipping accelerates aggregates too — and
//! produces a mergeable [`PartialResult`]; [`finalize`] turns merged
//! partials into the ordered, limited, typed [`QueryResult`].

#![warn(missing_docs)]

pub mod exec;
pub mod metrics;
pub mod plan_exec;
pub mod profile;
pub mod raw_scan;
pub mod result;
pub mod row_eval;
pub mod scan;
pub mod select;
pub mod zone;

pub use exec::{Executor, QueryOutcome};
pub use metrics::{QueryMetrics, ScanMetrics};
pub use plan_exec::{finalize, AggState, PartialData, PartialResult};
pub use profile::{ClauseProfile, QueryProfile};
pub use raw_scan::scan_raw_records;
pub use result::{ColumnDesc, QueryResult};
pub use row_eval::{eval_clause_on_block, eval_query_on_block, eval_simple_on_block};
pub use scan::{scan_count, ScanOptions};
pub use select::{select_from_raw, select_from_table, SelectResult};
pub use zone::block_can_match;
