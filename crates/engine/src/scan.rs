//! Columnar table scan with bitvector data skipping.

use crate::metrics::ScanMetrics;
use crate::row_eval::eval_query_on_block;
use ciao_columnar::Table;
use ciao_predicate::Query;

/// Scan configuration.
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Predicate ids (of the query's pushed clauses) whose block
    /// bitvectors should be ANDed into a skip mask. Empty = no skipping.
    pub skip_predicate_ids: Vec<u32>,
    /// Prune whole blocks via min/max/null metadata before row-level
    /// work (see [`crate::zone`]).
    pub use_zone_maps: bool,
}

impl ScanOptions {
    /// A scan with no skipping and no pruning.
    pub fn full() -> ScanOptions {
        ScanOptions::default()
    }

    /// A scan that skips via the given predicate ids.
    pub fn skipping(ids: impl Into<Vec<u32>>) -> ScanOptions {
        ScanOptions {
            skip_predicate_ids: ids.into(),
            use_zone_maps: false,
        }
    }

    /// Enables zone-map block pruning on top of the current options.
    pub fn with_zone_maps(mut self) -> ScanOptions {
        self.use_zone_maps = true;
        self
    }
}

/// Counts rows of `table` satisfying `query`, applying data skipping
/// when requested (paper §VI-B).
///
/// Every surviving row is verified with **full** typed evaluation of
/// all clauses — bits are a pre-filter, not an answer: client-side
/// matching admits false positives, so a set bit proves nothing.
/// Skipping is only ever sound in the other direction (bit 0 ⇒ the
/// clause cannot hold), which block metadata guarantees.
pub fn scan_count(table: &Table, query: &Query, options: &ScanOptions) -> ScanMetrics {
    let mut metrics = ScanMetrics::default();
    for block in table.blocks() {
        if options.use_zone_maps && !crate::zone::block_can_match(query, block) {
            metrics.blocks_pruned += 1;
            metrics.rows_skipped += block.row_count();
            continue;
        }
        metrics.blocks_visited += 1;
        let mask = if options.skip_predicate_ids.is_empty() {
            None
        } else {
            // A missing bitvector makes skip_mask return None →
            // conservative full scan of the block.
            block.metadata().skip_mask(&options.skip_predicate_ids)
        };
        match mask {
            Some(mask) => {
                metrics.rows_skipped += mask.count_zeros();
                for row in mask.iter_ones() {
                    metrics.rows_scanned += 1;
                    if eval_query_on_block(query, block, row) {
                        metrics.rows_matched += 1;
                    }
                }
            }
            None => {
                for row in 0..block.row_count() {
                    metrics.rows_scanned += 1;
                    if eval_query_on_block(query, block, row) {
                        metrics.rows_matched += 1;
                    }
                }
            }
        }
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_columnar::{Schema, TableBuilder};
    use ciao_json::parse;
    use ciao_predicate::parse_query;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// 100 rows; predicate id 1 ⇔ stars = 5 (exact bits, no false
    /// positives); predicate id 2 ⇔ always-on noise bits.
    fn table() -> ciao_columnar::Table {
        let recs: Vec<_> = (0..100)
            .map(|i| parse(&format!(r#"{{"name":"u{}","stars":{}}}"#, i, i % 5 + 1)).unwrap())
            .collect();
        let schema = Arc::new(Schema::infer(&recs).unwrap());
        let mut tb = TableBuilder::with_block_size(schema, &[1, 2], 16);
        for (i, r) in recs.iter().enumerate() {
            let bits = BTreeMap::from([(1, i % 5 + 1 == 5), (2, true)]);
            tb.push_record(r, &bits);
        }
        tb.finish()
    }

    #[test]
    fn full_scan_counts_correctly() {
        let t = table();
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_count(&t, &q, &ScanOptions::full());
        assert_eq!(m.rows_matched, 20);
        assert_eq!(m.rows_scanned, 100);
        assert_eq!(m.rows_skipped, 0);
        assert_eq!(m.blocks_visited, 7);
    }

    #[test]
    fn skipping_gives_same_count_with_fewer_rows() {
        let t = table();
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_count(&t, &q, &ScanOptions::skipping(vec![1]));
        assert_eq!(m.rows_matched, 20);
        assert_eq!(m.rows_scanned, 20);
        assert_eq!(m.rows_skipped, 80);
        assert!((m.skip_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn false_positive_bits_are_verified_away() {
        // Predicate 2's bits are all 1 (pure false positives for any
        // real predicate); the verify step must still give the exact
        // count.
        let t = table();
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_count(&t, &q, &ScanOptions::skipping(vec![2]));
        assert_eq!(m.rows_matched, 20);
        assert_eq!(m.rows_scanned, 100);
        assert_eq!(m.rows_skipped, 0);
    }

    #[test]
    fn conjunction_intersects_masks() {
        let t = table();
        let q = parse_query("q", r#"stars = 5 AND name = "u4""#).unwrap();
        let m = scan_count(&t, &q, &ScanOptions::skipping(vec![1, 2]));
        assert_eq!(m.rows_matched, 1); // u4 has stars 5
        assert_eq!(m.rows_scanned, 20); // mask(1) ∧ mask(2) = mask(1)
    }

    #[test]
    fn missing_bitvector_falls_back_to_full_scan() {
        let t = table();
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_count(&t, &q, &ScanOptions::skipping(vec![99]));
        assert_eq!(m.rows_matched, 20);
        assert_eq!(m.rows_scanned, 100);
        assert_eq!(m.rows_skipped, 0);
    }

    #[test]
    fn empty_table() {
        let t = ciao_columnar::Table::default();
        let q = parse_query("q", "stars = 5").unwrap();
        let m = scan_count(&t, &q, &ScanOptions::full());
        assert_eq!(m.rows_matched, 0);
        assert_eq!(m.blocks_visited, 0);
    }
}
