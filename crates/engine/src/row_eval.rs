//! Predicate evaluation directly on columnar rows.
//!
//! Mirrors `ciao_predicate::eval` exactly, but reads
//! [`ciao_columnar::Cell`]s instead
//! of a parsed DOM — the fast path for verification scans. The
//! integration suite asserts the two agree on every dataset record.

use ciao_columnar::Block;
use ciao_predicate::{Clause, Query, SimplePredicate};

/// Evaluates one simple predicate against row `row` of `block`.
pub fn eval_simple_on_block(p: &SimplePredicate, block: &Block, row: usize) -> bool {
    match p {
        SimplePredicate::StrEq { key, value } => {
            block.cell(row, key).as_str() == Some(value.as_str())
        }
        SimplePredicate::StrContains { key, needle } => block
            .cell(row, key)
            .as_str()
            .is_some_and(|s| s.contains(needle.as_str())),
        SimplePredicate::NotNull { key } => !block.cell(row, key).is_null(),
        SimplePredicate::IntEq { key, value } => block.cell(row, key).as_i64() == Some(*value),
        SimplePredicate::BoolEq { key, value } => block.cell(row, key).as_bool() == Some(*value),
        SimplePredicate::IntLt { key, value } => {
            block.cell(row, key).as_i64().is_some_and(|i| i < *value)
        }
        SimplePredicate::IntGt { key, value } => {
            block.cell(row, key).as_i64().is_some_and(|i| i > *value)
        }
        SimplePredicate::FloatEq { key, value } => block.cell(row, key).as_f64() == Some(*value),
    }
}

/// Evaluates a disjunctive clause against one row.
pub fn eval_clause_on_block(c: &Clause, block: &Block, row: usize) -> bool {
    c.disjuncts()
        .iter()
        .any(|p| eval_simple_on_block(p, block, row))
}

/// Evaluates a query's full conjunction against one row.
pub fn eval_query_on_block(q: &Query, block: &Block, row: usize) -> bool {
    q.clauses
        .iter()
        .all(|c| eval_clause_on_block(c, block, row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_columnar::{Schema, TableBuilder};
    use ciao_json::{parse, JsonValue};
    use ciao_predicate::{eval_query, eval_simple, parse_query};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn records() -> Vec<JsonValue> {
        [
            r#"{"name":"Bob","stars":5,"score":4.5,"active":true,"text":"delicious food"}"#,
            r#"{"name":"Alice","stars":3,"score":2.0,"active":false,"text":"awful"}"#,
            r#"{"name":"John","stars":5,"active":true}"#,
            r#"{"stars":1,"score":1.0,"text":"ok delicious"}"#,
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect()
    }

    fn block() -> ciao_columnar::Table {
        let recs = records();
        let schema = Arc::new(Schema::infer(&recs).unwrap());
        let mut tb = TableBuilder::new(schema, &[]);
        for r in &recs {
            tb.push_record(r, &BTreeMap::new());
        }
        tb.finish()
    }

    #[test]
    fn matches_typed_eval_on_every_record_and_predicate() {
        let recs = records();
        let table = block();
        let b = &table.blocks()[0];
        let preds = [
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
            SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into(),
            },
            SimplePredicate::NotNull {
                key: "score".into(),
            },
            SimplePredicate::IntEq {
                key: "stars".into(),
                value: 5,
            },
            SimplePredicate::BoolEq {
                key: "active".into(),
                value: true,
            },
            SimplePredicate::IntLt {
                key: "stars".into(),
                value: 4,
            },
            SimplePredicate::IntGt {
                key: "stars".into(),
                value: 4,
            },
            SimplePredicate::FloatEq {
                key: "score".into(),
                value: 4.5,
            },
            SimplePredicate::FloatEq {
                key: "stars".into(),
                value: 5.0,
            },
            SimplePredicate::StrEq {
                key: "missing".into(),
                value: "x".into(),
            },
        ];
        for (row, rec) in recs.iter().enumerate() {
            for p in &preds {
                assert_eq!(
                    eval_simple_on_block(p, b, row),
                    eval_simple(p, rec),
                    "divergence for {p} on row {row}"
                );
            }
        }
    }

    #[test]
    fn query_conjunction_on_block() {
        let table = block();
        let b = &table.blocks()[0];
        let q = parse_query("q", r#"stars = 5 AND active = true"#).unwrap();
        let hits: Vec<usize> = (0..b.row_count())
            .filter(|&r| eval_query_on_block(&q, b, r))
            .collect();
        assert_eq!(hits, vec![0, 2]);
        // Agreement with typed evaluation.
        for (row, rec) in records().iter().enumerate() {
            assert_eq!(eval_query_on_block(&q, b, row), eval_query(&q, rec));
        }
    }

    #[test]
    fn clause_disjunction_on_block() {
        let table = block();
        let b = &table.blocks()[0];
        let q = parse_query("q", r#"name IN ("Alice","John")"#).unwrap();
        let hits: Vec<usize> = (0..b.row_count())
            .filter(|&r| eval_clause_on_block(&q.clauses[0], b, r))
            .collect();
        assert_eq!(hits, vec![1, 2]);
    }
}
