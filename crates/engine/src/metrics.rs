//! Execution metrics.

use std::time::Duration;

/// Counters from one table or raw scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Blocks visited.
    pub blocks_visited: usize,
    /// Blocks pruned wholesale by zone maps.
    pub blocks_pruned: usize,
    /// Rows actually evaluated.
    pub rows_scanned: usize,
    /// Rows skipped via bitvector masks without evaluation.
    pub rows_skipped: usize,
    /// Rows that satisfied the query.
    pub rows_matched: usize,
    /// Raw records JIT-parsed (raw scans only).
    pub records_parsed: usize,
}

impl ScanMetrics {
    /// Merges another scan's counters into this one.
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.blocks_visited += other.blocks_visited;
        self.blocks_pruned += other.blocks_pruned;
        self.rows_scanned += other.rows_scanned;
        self.rows_skipped += other.rows_skipped;
        self.rows_matched += other.rows_matched;
        self.records_parsed += other.records_parsed;
    }

    /// Fraction of candidate rows that skipping eliminated.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.rows_scanned + self.rows_skipped;
        if total == 0 {
            0.0
        } else {
            self.rows_skipped as f64 / total as f64
        }
    }
}

/// Full accounting for one executed query.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Columnar-side counters.
    pub table_scan: ScanMetrics,
    /// Parked-raw-side counters (zeroed when the parked side was
    /// skipped wholesale).
    pub raw_scan: ScanMetrics,
    /// Whether bitvector skipping was applied.
    pub used_skipping: bool,
    /// Whether the parked raw store had to be scanned.
    pub scanned_parked: bool,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Time spent scanning the columnar side (includes the skip-mask
    /// evaluation when `used_skipping` is set).
    pub table_scan_time: Duration,
    /// Time spent in the JIT parse-scan fallback over parked raw rows
    /// (zero when the parked side was skipped wholesale).
    pub raw_scan_time: Duration,
}

impl QueryMetrics {
    /// Total rows satisfying the query across both sides.
    pub fn total_matched(&self) -> usize {
        self.table_scan.rows_matched + self.raw_scan.rows_matched
    }

    /// Merges another execution's accounting into this one, as used
    /// when one logical query fans out across shards: counters add,
    /// the boolean flags OR (any shard that skipped / scanned parked
    /// sets the merged flag), and `elapsed` takes the max — the
    /// wall-clock of a parallel fan-out is its slowest shard. The
    /// per-side scan times add: they report cumulative work done, not
    /// wall-clock. Folding from [`QueryMetrics::default`] is the
    /// identity.
    pub fn merge(&mut self, other: &QueryMetrics) {
        self.table_scan.merge(&other.table_scan);
        self.raw_scan.merge(&other.raw_scan);
        self.used_skipping |= other.used_skipping;
        self.scanned_parked |= other.scanned_parked;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.table_scan_time += other.table_scan_time;
        self.raw_scan_time += other.raw_scan_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_ratio() {
        let mut a = ScanMetrics {
            blocks_visited: 1,
            blocks_pruned: 1,
            rows_scanned: 10,
            rows_skipped: 30,
            rows_matched: 4,
            records_parsed: 0,
        };
        let b = ScanMetrics {
            blocks_visited: 2,
            blocks_pruned: 0,
            rows_scanned: 20,
            rows_skipped: 0,
            rows_matched: 6,
            records_parsed: 20,
        };
        a.merge(&b);
        assert_eq!(a.blocks_visited, 3);
        assert_eq!(a.rows_scanned, 30);
        assert_eq!(a.rows_matched, 10);
        assert_eq!(a.records_parsed, 20);
        assert!((a.skip_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio() {
        assert_eq!(ScanMetrics::default().skip_ratio(), 0.0);
    }

    #[test]
    fn query_metrics_merge_is_fold_friendly() {
        let shard = QueryMetrics {
            table_scan: ScanMetrics {
                rows_matched: 3,
                rows_scanned: 7,
                ..Default::default()
            },
            raw_scan: ScanMetrics {
                rows_matched: 2,
                records_parsed: 9,
                ..Default::default()
            },
            used_skipping: true,
            scanned_parked: true,
            elapsed: Duration::from_millis(5),
            table_scan_time: Duration::from_millis(3),
            raw_scan_time: Duration::from_millis(1),
        };
        let mut merged = QueryMetrics::default();
        merged.merge(&shard);
        merged.merge(&shard);
        assert_eq!(merged.total_matched(), 10);
        assert_eq!(merged.raw_scan.records_parsed, 18);
        assert!(merged.used_skipping);
        assert!(merged.scanned_parked);
        // Parallel fan-out: wall-clock is the slowest shard, not the sum.
        assert_eq!(merged.elapsed, Duration::from_millis(5));
        // ...but per-side scan time is cumulative work, so it adds.
        assert_eq!(merged.table_scan_time, Duration::from_millis(6));
        assert_eq!(merged.raw_scan_time, Duration::from_millis(2));
    }

    #[test]
    fn query_totals() {
        let m = QueryMetrics {
            table_scan: ScanMetrics {
                rows_matched: 3,
                ..Default::default()
            },
            raw_scan: ScanMetrics {
                rows_matched: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(m.total_matched(), 5);
    }
}
