//! Property tests for the engine's skipping soundness:
//!
//! For ANY bitvectors that are supersets of the truth (the only kind a
//! correct client can produce — false positives allowed, false
//! negatives never), a skip-scan must return exactly the full-scan
//! count. Zone-map pruning must never change a count either, under any
//! block size.

use ciao_columnar::{Schema, TableBuilder};
use ciao_engine::{scan_count, ScanOptions};
use ciao_json::JsonValue;
use ciao_predicate::{eval_query, parse_query, Query};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Records over a small value domain so predicates hit often.
fn arb_records() -> impl Strategy<Value = Vec<JsonValue>> {
    prop::collection::vec((0i64..8, 0i64..4, prop::option::of(0i64..3)), 1..120).prop_map(|rows| {
        rows.into_iter()
            .map(|(stars, kind, opt)| {
                let mut pairs = vec![
                    ("stars".to_string(), JsonValue::from(stars)),
                    ("kind".to_string(), JsonValue::from(kind)),
                ];
                if let Some(o) = opt {
                    pairs.push(("opt".to_string(), JsonValue::from(o)));
                }
                JsonValue::Object(pairs)
            })
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        (0i64..10).prop_map(|v| parse_query("q", &format!("stars = {v}")).unwrap()),
        (0i64..10, 0i64..5).prop_map(|(a, b)| {
            parse_query("q", &format!("stars = {a} AND kind = {b}")).unwrap()
        }),
        (0i64..10).prop_map(|v| parse_query("q", &format!("stars < {v}")).unwrap()),
        (0i64..4).prop_map(|v| parse_query("q", &format!("opt = {v}")).unwrap()),
        Just(parse_query("q", "opt != NULL").unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn superset_bits_never_change_counts(
        records in arb_records(),
        query in arb_query(),
        block_size in 1usize..16,
        noise in prop::collection::vec(any::<bool>(), 120),
    ) {
        let truth = records.iter().filter(|r| eval_query(&query, r)).count();

        // Bits for predicate 0: the query's truth OR noise (superset).
        let schema = Arc::new(Schema::infer(&records).unwrap());
        let mut tb = TableBuilder::with_block_size(schema, &[0], block_size);
        for (i, r) in records.iter().enumerate() {
            let exact = eval_query(&query, r);
            let bit = exact || noise[i % noise.len()];
            tb.push_record(r, &BTreeMap::from([(0, bit)]));
        }
        let table = tb.finish();

        let full = scan_count(&table, &query, &ScanOptions::full());
        prop_assert_eq!(full.rows_matched, truth);

        let skipped = scan_count(&table, &query, &ScanOptions::skipping(vec![0]));
        prop_assert_eq!(skipped.rows_matched, truth, "skip-scan diverged");
        prop_assert!(skipped.rows_scanned <= full.rows_scanned);

        let zoned = scan_count(
            &table,
            &query,
            &ScanOptions::skipping(vec![0]).with_zone_maps(),
        );
        prop_assert_eq!(zoned.rows_matched, truth, "zone-mapped scan diverged");

        let zoned_full = scan_count(&table, &query, &ScanOptions::full().with_zone_maps());
        prop_assert_eq!(zoned_full.rows_matched, truth);
        prop_assert!(
            zoned_full.blocks_visited + zoned_full.blocks_pruned
                == table.blocks().len()
        );
    }

    #[test]
    fn exact_bits_scan_only_matches(
        records in arb_records(),
        query in arb_query(),
        block_size in 1usize..16,
    ) {
        // With exact (no false positive) bits, the skip-scan visits
        // precisely the matching rows.
        let truth = records.iter().filter(|r| eval_query(&query, r)).count();
        let schema = Arc::new(Schema::infer(&records).unwrap());
        let mut tb = TableBuilder::with_block_size(schema, &[0], block_size);
        for r in &records {
            tb.push_record(r, &BTreeMap::from([(0, eval_query(&query, r))]));
        }
        let table = tb.finish();
        let m = scan_count(&table, &query, &ScanOptions::skipping(vec![0]));
        prop_assert_eq!(m.rows_matched, truth);
        prop_assert_eq!(m.rows_scanned, truth);
        prop_assert_eq!(m.rows_skipped, records.len() - truth);
    }
}

#[test]
fn zone_maps_prune_out_of_range_blocks() {
    // Records sorted by stars so blocks have tight ranges.
    let records: Vec<JsonValue> = (0..100)
        .map(|i| JsonValue::object([("stars", JsonValue::from(i / 10))]))
        .collect();
    let schema = Arc::new(Schema::infer(&records).unwrap());
    let mut tb = TableBuilder::with_block_size(schema, &[], 10);
    for r in &records {
        tb.push_record(r, &BTreeMap::new());
    }
    let table = tb.finish();
    let q = parse_query("q", "stars = 3").unwrap();
    let m = scan_count(&table, &q, &ScanOptions::full().with_zone_maps());
    assert_eq!(m.rows_matched, 10);
    assert_eq!(m.blocks_pruned, 9, "only one block holds stars = 3");
    assert_eq!(m.blocks_visited, 1);
}
