//! Columnar storage substrate (the repo's Parquet substitute).
//!
//! CIAO converts admitted JSON records into a binary columnar format
//! whose data blocks carry metadata — including the **per-predicate
//! bitvectors** that drive data skipping (paper §VI). What the system
//! needs from "Parquet" is:
//!
//! 1. a real conversion cost at load time (type dispatch, dictionary
//!    building, encoding) — the thing partial loading avoids;
//! 2. block-level metadata holding bitvectors, min/max and null counts;
//! 3. fast columnar scans for query verification.
//!
//! Layout: a [`Table`] is a sequence of fixed-[`Schema`] [`Block`]s
//! (row groups, default 1024 rows). Each block stores one encoded
//! column per field plus a [`BlockMetadata`]. The on-disk format is
//! implemented in [`io`].

#![warn(missing_docs)]

pub mod block;
pub mod column;
pub mod encoding;
pub mod io;
pub mod metadata;
pub mod schema;
pub mod table;

pub use block::{Block, BlockBuilder};
pub use column::{Cell, Column, ColumnBuilder, ColumnValues};
pub use io::{
    crc32, read_block, read_schema, read_table, write_block, write_schema, write_table, IoError,
    PageReader, PageWriter,
};
pub use metadata::{BlockMetadata, ColumnStats, STR_DICT_STATS_MAX};
pub use schema::{DataType, Field, Schema, SchemaError};
pub use table::{Table, TableBuilder, DEFAULT_BLOCK_SIZE};
