//! Tables: sequences of blocks under one schema.

use crate::block::{Block, BlockBuilder};
use crate::column::Cell;
use crate::schema::Schema;
use ciao_json::JsonValue;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default rows per block — mirrors the paper's ~1k-record chunks.
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// An immutable columnar table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    schema: Option<Arc<Schema>>,
    blocks: Vec<Block>,
}

impl Table {
    /// Builds a table from finished blocks (all must share the schema).
    pub fn from_blocks(schema: Arc<Schema>, blocks: Vec<Block>) -> Table {
        for b in &blocks {
            assert_eq!(b.schema(), schema.as_ref(), "block schema mismatch");
        }
        Table {
            schema: Some(schema),
            blocks,
        }
    }

    /// The schema (`None` for an empty table that never saw data).
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_deref()
    }

    /// The blocks in order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total rows across blocks.
    pub fn row_count(&self) -> usize {
        self.blocks.iter().map(Block::row_count).sum()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Appends another table's blocks (schemas must match). Used by
    /// just-in-time promotion of parked records.
    pub fn merge(&mut self, other: Table) {
        let Some(other_schema) = other.schema else {
            return; // nothing to merge
        };
        match &self.schema {
            None => self.schema = Some(other_schema),
            Some(ours) => assert_eq!(
                ours.as_ref(),
                other_schema.as_ref(),
                "cannot merge tables with different schemas"
            ),
        }
        self.blocks.extend(other.blocks);
    }

    /// Reads a cell by global row index.
    pub fn cell(&self, mut row: usize, field: &str) -> Cell<'_> {
        for block in &self.blocks {
            if row < block.row_count() {
                return block.cell(row, field);
            }
            row -= block.row_count();
        }
        panic!("row {row} out of range");
    }

    /// Iterates all rows as reconstructed JSON records (diagnostics and
    /// tests; queries scan blocks directly).
    pub fn iter_records(&self) -> impl Iterator<Item = JsonValue> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| (0..b.row_count()).map(move |r| b.to_record(r)))
    }
}

/// Streams rows into fixed-size blocks.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    predicate_ids: Vec<u32>,
    block_size: usize,
    current: BlockBuilder,
    blocks: Vec<Block>,
    coercion_failures: usize,
}

impl TableBuilder {
    /// Creates a builder with the default block size.
    pub fn new(schema: Arc<Schema>, predicate_ids: &[u32]) -> TableBuilder {
        Self::with_block_size(schema, predicate_ids, DEFAULT_BLOCK_SIZE)
    }

    /// Creates a builder with an explicit block size.
    pub fn with_block_size(
        schema: Arc<Schema>,
        predicate_ids: &[u32],
        block_size: usize,
    ) -> TableBuilder {
        assert!(block_size > 0, "block size must be positive");
        TableBuilder {
            current: BlockBuilder::new(Arc::clone(&schema), predicate_ids),
            schema,
            predicate_ids: predicate_ids.to_vec(),
            block_size,
            blocks: Vec::new(),
            coercion_failures: 0,
        }
    }

    /// Appends one record with its predicate bits.
    pub fn push_record(&mut self, record: &JsonValue, bits: &BTreeMap<u32, bool>) {
        self.current.push_record(record, bits);
        if self.current.len() >= self.block_size {
            self.seal_block();
        }
    }

    /// Rows staged + sealed so far.
    pub fn row_count(&self) -> usize {
        self.blocks.iter().map(Block::row_count).sum::<usize>() + self.current.len()
    }

    /// Values that failed type coercion so far (stored as NULL).
    pub fn coercion_failures(&self) -> usize {
        self.coercion_failures + self.current.coercion_failures()
    }

    fn seal_block(&mut self) {
        let finished = std::mem::replace(
            &mut self.current,
            BlockBuilder::new(Arc::clone(&self.schema), &self.predicate_ids),
        );
        self.coercion_failures += finished.coercion_failures();
        self.blocks.push(finished.finish());
    }

    /// Finalizes the table.
    pub fn finish(mut self) -> Table {
        if !self.current.is_empty() {
            self.seal_block();
        }
        Table {
            schema: Some(self.schema),
            blocks: self.blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};
    use ciao_json::parse;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
            ])
            .unwrap(),
        )
    }

    fn build(n: usize, block_size: usize) -> Table {
        let mut tb = TableBuilder::with_block_size(schema(), &[0], block_size);
        for i in 0..n {
            let rec = parse(&format!(r#"{{"id":{i},"name":"u{i}"}}"#)).unwrap();
            tb.push_record(&rec, &BTreeMap::from([(0, i % 2 == 0)]));
        }
        tb.finish()
    }

    #[test]
    fn blocks_split_at_block_size() {
        let t = build(10, 4);
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.blocks().len(), 3);
        assert_eq!(t.blocks()[0].row_count(), 4);
        assert_eq!(t.blocks()[2].row_count(), 2);
    }

    #[test]
    fn global_row_addressing() {
        let t = build(10, 4);
        assert_eq!(t.cell(0, "id").as_i64(), Some(0));
        assert_eq!(t.cell(5, "id").as_i64(), Some(5));
        assert_eq!(t.cell(9, "name").as_str(), Some("u9"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row() {
        build(3, 4).cell(3, "id");
    }

    #[test]
    fn bitvecs_follow_blocks() {
        let t = build(10, 4);
        let bv0 = t.blocks()[0].metadata().bitvec(0).unwrap();
        assert_eq!(bv0.ones_positions(), vec![0, 2]);
        let bv2 = t.blocks()[2].metadata().bitvec(0).unwrap();
        assert_eq!(bv2.ones_positions(), vec![0]); // global rows 8, 9 → 8 is even
    }

    #[test]
    fn iter_records_roundtrip() {
        let t = build(5, 2);
        let recs: Vec<String> = t.iter_records().map(|r| ciao_json::to_string(&r)).collect();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[3], r#"{"id":3,"name":"u3"}"#);
    }

    #[test]
    fn empty_table() {
        let t = Table::default();
        assert!(t.is_empty());
        assert!(t.schema().is_none());
        assert_eq!(t.iter_records().count(), 0);

        let built = TableBuilder::new(schema(), &[]).finish();
        assert!(built.is_empty());
        assert!(built.schema().is_some());
        assert_eq!(built.blocks().len(), 0);
    }

    #[test]
    fn exact_multiple_of_block_size() {
        let t = build(8, 4);
        assert_eq!(t.blocks().len(), 2);
        assert_eq!(t.row_count(), 8);
    }

    #[test]
    fn merge_appends_blocks() {
        let mut a = build(6, 4);
        let b = build(5, 4);
        a.merge(b);
        assert_eq!(a.row_count(), 11);
        assert_eq!(a.blocks().len(), 4);
        // Global addressing spans the merged blocks.
        assert_eq!(a.cell(6, "id").as_i64(), Some(0));

        let mut empty = Table::default();
        empty.merge(build(3, 4));
        assert_eq!(empty.row_count(), 3);
        empty.merge(Table::default());
        assert_eq!(empty.row_count(), 3);
    }

    #[test]
    #[should_panic(expected = "different schemas")]
    fn merge_rejects_schema_mismatch() {
        use crate::schema::{DataType, Field};
        let mut a = build(2, 4);
        let other_schema =
            Arc::new(Schema::new(vec![Field::new("different", DataType::Int)]).unwrap());
        let b = TableBuilder::new(other_schema, &[]).finish();
        a.merge(b);
    }
}
