//! Light-weight column encodings for the on-disk format.
//!
//! Two classic schemes, chosen because they are what make columnar
//! formats cheap to scan and expensive to *build* — the asymmetry
//! partial loading exploits:
//!
//! * **Dictionary** encoding for strings: distinct values stored once,
//!   rows as u32 codes. Machine logs have tiny per-column cardinality.
//! * **RLE** (run-length) for integers and dictionary codes: logs are
//!   bursty, so long runs are common.
//!
//! Encodings are chosen adaptively per column chunk; a plain encoding
//! backs everything else.

use bytes::{Buf, BufMut, BytesMut};

/// Errors from decoding an encoded column chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended early.
    Truncated,
    /// A dictionary code referenced a missing entry.
    BadDictionaryCode {
        /// The offending code.
        code: u32,
        /// Dictionary size.
        dict_len: usize,
    },
    /// Unknown encoding tag.
    UnknownEncoding(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "encoded column truncated"),
            DecodeError::BadDictionaryCode { code, dict_len } => {
                write!(
                    f,
                    "dictionary code {code} out of range (dict has {dict_len})"
                )
            }
            DecodeError::UnknownEncoding(t) => write!(f, "unknown encoding tag {t}"),
            DecodeError::BadUtf8 => write!(f, "encoded string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn get_checked<const N: usize>(buf: &mut impl Buf) -> Result<[u8; N], DecodeError> {
    if buf.remaining() < N {
        return Err(DecodeError::Truncated);
    }
    let mut out = [0u8; N];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, DecodeError> {
    Ok(u32::from_le_bytes(get_checked::<4>(buf)?))
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    Ok(u64::from_le_bytes(get_checked::<8>(buf)?))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf) -> Result<String, DecodeError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)
}

// --- integer RLE ----------------------------------------------------------

/// Encoding tags for integer columns.
const INT_PLAIN: u8 = 0;
const INT_RLE: u8 = 1;

/// Encodes an i64 column chunk, choosing RLE when it is smaller.
pub fn encode_ints(values: &[i64], out: &mut BytesMut) {
    let runs = count_runs(values);
    // RLE stores (value, run_len) per run at 12 bytes; plain is 8/value.
    let rle_size = runs * 12;
    let plain_size = values.len() * 8;
    if rle_size < plain_size {
        out.put_u8(INT_RLE);
        out.put_u64_le(values.len() as u64);
        let mut i = 0;
        while i < values.len() {
            let v = values[i];
            let mut j = i + 1;
            while j < values.len() && values[j] == v {
                j += 1;
            }
            out.put_i64_le(v);
            out.put_u32_le((j - i) as u32);
            i = j;
        }
    } else {
        out.put_u8(INT_PLAIN);
        out.put_u64_le(values.len() as u64);
        for &v in values {
            out.put_i64_le(v);
        }
    }
}

/// Decodes an i64 column chunk.
pub fn decode_ints(buf: &mut impl Buf) -> Result<Vec<i64>, DecodeError> {
    let tag = get_checked::<1>(buf)?[0];
    let n = get_u64(buf)? as usize;
    match tag {
        INT_PLAIN => {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(i64::from_le_bytes(get_checked::<8>(buf)?));
            }
            Ok(out)
        }
        INT_RLE => {
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let v = i64::from_le_bytes(get_checked::<8>(buf)?);
                let run = get_u32(buf)? as usize;
                if run == 0 || out.len() + run > n {
                    return Err(DecodeError::Truncated);
                }
                out.extend(std::iter::repeat_n(v, run));
            }
            Ok(out)
        }
        other => Err(DecodeError::UnknownEncoding(other)),
    }
}

fn count_runs(values: &[i64]) -> usize {
    let mut runs = 0;
    let mut prev: Option<i64> = None;
    for &v in values {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

// --- string dictionary -----------------------------------------------------

/// Encoding tags for string columns.
const STR_PLAIN: u8 = 0;
const STR_DICT: u8 = 1;

/// Encodes a string column chunk: dictionary when the distinct count is
/// at most half the row count, plain otherwise.
pub fn encode_strings(values: &[String], out: &mut BytesMut) {
    let mut dict: Vec<&str> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(values.len());
    let mut index: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for v in values {
        let code = *index.entry(v.as_str()).or_insert_with(|| {
            dict.push(v.as_str());
            (dict.len() - 1) as u32
        });
        codes.push(code);
    }

    if !values.is_empty() && dict.len() * 2 <= values.len() {
        out.put_u8(STR_DICT);
        out.put_u64_le(values.len() as u64);
        out.put_u32_le(dict.len() as u32);
        for entry in &dict {
            put_str(out, entry);
        }
        // Codes as RLE-able ints (reuse the int codec).
        let code_ints: Vec<i64> = codes.iter().map(|&c| c as i64).collect();
        encode_ints(&code_ints, out);
    } else {
        out.put_u8(STR_PLAIN);
        out.put_u64_le(values.len() as u64);
        for v in values {
            put_str(out, v);
        }
    }
}

/// Decodes a string column chunk.
pub fn decode_strings(buf: &mut impl Buf) -> Result<Vec<String>, DecodeError> {
    let tag = get_checked::<1>(buf)?[0];
    let n = get_u64(buf)? as usize;
    match tag {
        STR_PLAIN => {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(get_str(buf)?);
            }
            Ok(out)
        }
        STR_DICT => {
            let dict_len = get_u32(buf)? as usize;
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(get_str(buf)?);
            }
            let codes = decode_ints(buf)?;
            if codes.len() != n {
                return Err(DecodeError::Truncated);
            }
            codes
                .into_iter()
                .map(|c| {
                    let c = c as u32;
                    dict.get(c as usize)
                        .cloned()
                        .ok_or(DecodeError::BadDictionaryCode {
                            code: c,
                            dict_len: dict.len(),
                        })
                })
                .collect()
        }
        other => Err(DecodeError::UnknownEncoding(other)),
    }
}

// --- floats (plain) ---------------------------------------------------------

/// Encodes an f64 column chunk (always plain; floats rarely repeat).
pub fn encode_floats(values: &[f64], out: &mut BytesMut) {
    out.put_u64_le(values.len() as u64);
    for &v in values {
        out.put_f64_le(v);
    }
}

/// Decodes an f64 column chunk.
pub fn decode_floats(buf: &mut impl Buf) -> Result<Vec<f64>, DecodeError> {
    let n = get_u64(buf)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f64::from_le_bytes(get_checked::<8>(buf)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_ints(values: &[i64]) {
        let mut buf = BytesMut::new();
        encode_ints(values, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_ints(&mut bytes).unwrap();
        assert_eq!(back, values);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn int_plain_roundtrip() {
        roundtrip_ints(&[]);
        roundtrip_ints(&[1, 2, 3, -7, i64::MAX, i64::MIN]);
    }

    #[test]
    fn int_rle_roundtrip_and_smaller() {
        let runs: Vec<i64> = std::iter::repeat_n(5, 1000)
            .chain(std::iter::repeat_n(-2, 500))
            .collect();
        let mut buf = BytesMut::new();
        encode_ints(&runs, &mut buf);
        assert_eq!(buf[0], INT_RLE);
        assert!(buf.len() < runs.len() * 8 / 10, "RLE should crush runs");
        let back = decode_ints(&mut buf.freeze()).unwrap();
        assert_eq!(back, runs);
    }

    #[test]
    fn int_random_stays_plain() {
        let vals: Vec<i64> = (0..100).map(|i| i * 37 % 91 - 45).collect();
        let mut buf = BytesMut::new();
        encode_ints(&vals, &mut buf);
        assert_eq!(buf[0], INT_PLAIN);
    }

    #[test]
    fn string_dict_roundtrip() {
        let values: Vec<String> = (0..300).map(|i| format!("level-{}", i % 4)).collect();
        let mut buf = BytesMut::new();
        encode_strings(&values, &mut buf);
        assert_eq!(buf[0], STR_DICT);
        let back = decode_strings(&mut buf.freeze()).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn string_high_cardinality_stays_plain() {
        let values: Vec<String> = (0..50).map(|i| format!("unique-{i}")).collect();
        let mut buf = BytesMut::new();
        encode_strings(&values, &mut buf);
        assert_eq!(buf[0], STR_PLAIN);
        let back = decode_strings(&mut buf.freeze()).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn string_empty_and_unicode() {
        let values = vec!["".to_owned(), "héllo 😀".to_owned(), "".to_owned()];
        let mut buf = BytesMut::new();
        encode_strings(&values, &mut buf);
        let back = decode_strings(&mut buf.freeze()).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn float_roundtrip() {
        let values = [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, -0.0];
        let mut buf = BytesMut::new();
        encode_floats(&values, &mut buf);
        let back = decode_floats(&mut buf.freeze()).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn truncated_inputs_rejected() {
        let mut buf = BytesMut::new();
        encode_ints(&[1, 2, 3], &mut buf);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert!(decode_ints(&mut slice).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        buf.put_u64_le(1);
        assert_eq!(
            decode_ints(&mut buf.freeze()).unwrap_err(),
            DecodeError::UnknownEncoding(99)
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(STR_PLAIN);
        buf.put_u64_le(1);
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_strings(&mut buf.freeze()).unwrap_err(),
            DecodeError::BadUtf8
        );
    }
}
