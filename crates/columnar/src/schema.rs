//! Table schemas.

use ciao_json::JsonValue;

/// The column types the store supports.
///
/// Non-scalar JSON (objects, arrays) is stored as its compact
/// serialized text under [`DataType::Json`]; CIAO's predicate columns
/// are always scalars, so nested payloads only need to survive a
/// round-trip, not support comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Arbitrary nested JSON, kept as serialized text.
    Json,
}

impl DataType {
    /// The natural column type for a JSON value (`None` for null —
    /// nulls carry no type information).
    pub fn of(value: &JsonValue) -> Option<DataType> {
        match value {
            JsonValue::Null => None,
            JsonValue::Bool(_) => Some(DataType::Bool),
            JsonValue::Number(n) => Some(if n.is_int() {
                DataType::Int
            } else {
                DataType::Float
            }),
            JsonValue::String(_) => Some(DataType::Str),
            JsonValue::Array(_) | JsonValue::Object(_) => Some(DataType::Json),
        }
    }

    /// Widens two observed types into one storable type, if possible.
    /// Int widens to Float; everything else must match.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }

    /// Wire tag for the io module.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DataType::Str => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Bool => 3,
            DataType::Json => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<DataType> {
        Some(match tag {
            0 => DataType::Str,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Bool,
            4 => DataType::Json,
            _ => return None,
        })
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Str => "str",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Json => "json",
        };
        f.write_str(s)
    }
}

/// One column definition. Every column is nullable — records in CIAO's
/// domains are sparse machine logs, and absence is the common case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name = top-level JSON key.
    pub name: String,
    /// Storage type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// Schema construction/validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two fields share a name.
    DuplicateField(String),
    /// A key appeared with incompatible types across records.
    TypeConflict {
        /// Field name.
        field: String,
        /// Previously inferred type.
        first: DataType,
        /// Conflicting type.
        second: DataType,
    },
    /// Inference saw no usable records.
    NoRecords,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::DuplicateField(name) => write!(f, "duplicate field `{name}`"),
            SchemaError::TypeConflict {
                field,
                first,
                second,
            } => {
                write!(f, "field `{field}` seen as both {first} and {second}")
            }
            SchemaError::NoRecords => write!(f, "cannot infer a schema from zero records"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered set of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate field names.
    pub fn new(fields: Vec<Field>) -> Result<Schema, SchemaError> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(SchemaError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Infers a schema from sample records: union of top-level keys,
    /// types unified across records (Int+Float ⇒ Float). Keys that only
    /// ever appear null default to `Str`. Non-object records are
    /// skipped. Irreconcilable types (e.g. Int vs Str) are an error;
    /// use [`Schema::infer_lenient`] for dirty streams.
    pub fn infer(records: &[JsonValue]) -> Result<Schema, SchemaError> {
        Self::infer_impl(records, true)
    }

    /// Like [`Schema::infer`], but on a type conflict the first-seen
    /// type wins — later conflicting values become NULLs (counted as
    /// coercion failures) at load time instead of sinking the whole
    /// pipeline. This is the right trade for machine logs, where one
    /// producer emitting `"stars":"five"` must not block ingestion.
    pub fn infer_lenient(records: &[JsonValue]) -> Result<Schema, SchemaError> {
        Self::infer_impl(records, false)
    }

    fn infer_impl(records: &[JsonValue], strict: bool) -> Result<Schema, SchemaError> {
        let mut order: Vec<String> = Vec::new();
        let mut types: std::collections::HashMap<String, Option<DataType>> =
            std::collections::HashMap::new();
        let mut saw_object = false;
        for rec in records {
            let Some(pairs) = rec.as_object() else {
                continue;
            };
            saw_object = true;
            for (k, v) in pairs {
                let entry = types.entry(k.clone());
                if let std::collections::hash_map::Entry::Vacant(_) = entry {
                    order.push(k.clone());
                }
                let slot = types.entry(k.clone()).or_insert(None);
                if let Some(t) = DataType::of(v) {
                    *slot = match *slot {
                        None => Some(t),
                        Some(prev) => match prev.unify(t) {
                            Some(unified) => Some(unified),
                            None if strict => {
                                return Err(SchemaError::TypeConflict {
                                    field: k.clone(),
                                    first: prev,
                                    second: t,
                                })
                            }
                            // Lenient: first-seen type wins.
                            None => Some(prev),
                        },
                    };
                }
            }
        }
        if !saw_object {
            return Err(SchemaError::NoRecords);
        }
        let fields = order
            .into_iter()
            .map(|name| {
                let dtype = types[&name].unwrap_or(DataType::Str);
                Field { name, dtype }
            })
            .collect();
        Schema::new(fields)
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_json::parse;

    #[test]
    fn datatype_of() {
        assert_eq!(DataType::of(&JsonValue::Null), None);
        assert_eq!(DataType::of(&JsonValue::from(true)), Some(DataType::Bool));
        assert_eq!(DataType::of(&JsonValue::from(3)), Some(DataType::Int));
        assert_eq!(DataType::of(&JsonValue::from(3.5)), Some(DataType::Float));
        assert_eq!(DataType::of(&JsonValue::from("s")), Some(DataType::Str));
        assert_eq!(DataType::of(&parse("[1]").unwrap()), Some(DataType::Json));
        assert_eq!(DataType::of(&parse("{}").unwrap()), Some(DataType::Json));
    }

    #[test]
    fn unify_rules() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Float.unify(DataType::Int), Some(DataType::Float));
        assert_eq!(DataType::Str.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Str.unify(DataType::Int), None);
        assert_eq!(DataType::Bool.unify(DataType::Json), None);
    }

    #[test]
    fn tags_roundtrip() {
        for t in [
            DataType::Str,
            DataType::Int,
            DataType::Float,
            DataType::Bool,
            DataType::Json,
        ] {
            assert_eq!(DataType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(DataType::from_tag(99), None);
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateField("a".into()));
    }

    #[test]
    fn infer_from_records() {
        let records: Vec<JsonValue> = [
            r#"{"name":"Bob","age":22,"score":4.5}"#,
            r#"{"name":"Alice","age":30,"tags":[1,2]}"#,
            r#"{"name":null,"age":25,"email":null}"#,
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let schema = Schema::infer(&records).unwrap();
        assert_eq!(schema.len(), 5);
        assert_eq!(schema.field("name").unwrap().dtype, DataType::Str);
        assert_eq!(schema.field("age").unwrap().dtype, DataType::Int);
        assert_eq!(schema.field("score").unwrap().dtype, DataType::Float);
        assert_eq!(schema.field("tags").unwrap().dtype, DataType::Json);
        // Only-null key defaults to Str.
        assert_eq!(schema.field("email").unwrap().dtype, DataType::Str);
        // Declaration order follows first appearance.
        assert_eq!(schema.fields()[0].name, "name");
        assert_eq!(schema.index_of("score"), Some(2));
        assert_eq!(schema.index_of("missing"), None);
    }

    #[test]
    fn infer_widens_int_to_float() {
        let records: Vec<JsonValue> = [r#"{"x":1}"#, r#"{"x":2.5}"#]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        let schema = Schema::infer(&records).unwrap();
        assert_eq!(schema.field("x").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn infer_conflict() {
        let records: Vec<JsonValue> = [r#"{"x":1}"#, r#"{"x":"s"}"#]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        let err = Schema::infer(&records).unwrap_err();
        assert!(matches!(err, SchemaError::TypeConflict { .. }));
    }

    #[test]
    fn infer_lenient_first_type_wins() {
        let records: Vec<JsonValue> = [r#"{"x":1,"y":"a"}"#, r#"{"x":"s","y":2.5}"#]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        let schema = Schema::infer_lenient(&records).unwrap();
        assert_eq!(schema.field("x").unwrap().dtype, DataType::Int);
        assert_eq!(schema.field("y").unwrap().dtype, DataType::Str);
        // Compatible widening still applies in lenient mode.
        let nums: Vec<JsonValue> = [r#"{"z":1}"#, r#"{"z":0.5}"#]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        assert_eq!(
            Schema::infer_lenient(&nums)
                .unwrap()
                .field("z")
                .unwrap()
                .dtype,
            DataType::Float
        );
    }

    #[test]
    fn infer_empty() {
        assert_eq!(Schema::infer(&[]).unwrap_err(), SchemaError::NoRecords);
        let non_obj = vec![parse("[1,2]").unwrap()];
        assert_eq!(Schema::infer(&non_obj).unwrap_err(), SchemaError::NoRecords);
    }
}
