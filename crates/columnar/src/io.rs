//! On-disk format for columnar tables, plus the generic page layer
//! durable storage builds on.
//!
//! ```text
//! [magic "CIAO"] [version u16]
//! [schema: field count u32, then (name, dtype tag) per field]
//! [block count u32]
//! per block:
//!   [row count u64]
//!   [bitvec count u32] then (predicate id u32, BitVec wire) per entry
//!   per column: [validity BitVec wire] [encoded values]
//! ```
//!
//! Everything is little-endian. Column stats are recomputed on read —
//! they are derived data, and recomputation keeps readers honest about
//! the actual payload.
//!
//! The schema and block codecs are exposed individually
//! ([`write_schema`]/[`read_schema`], [`write_block`]/[`read_block`])
//! so storage layers can frame them however they like;
//! [`write_table`]/[`read_table`] compose them into the monolithic
//! format above. [`PageWriter`]/[`PageReader`] add the generic frame
//! durable files use: tagged, length-prefixed, CRC-checksummed pages
//! whose corruption is *detected* (an [`IoError::Checksum`]) instead
//! of silently decoding garbage.

use crate::block::Block;
use crate::column::{Column, ColumnValues};
use crate::encoding::{
    decode_floats, decode_ints, decode_strings, encode_floats, encode_ints, encode_strings,
    DecodeError,
};
use crate::metadata::{BlockMetadata, ColumnStats};
use crate::schema::{DataType, Field, Schema, SchemaError};
use crate::table::Table;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ciao_bitvec::{BitVec, WireError};
use std::collections::BTreeMap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"CIAO";
const VERSION: u16 = 1;

/// Read/write failures.
#[derive(Debug)]
pub enum IoError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended early.
    Truncated,
    /// Column payload failed to decode.
    Decode(DecodeError),
    /// A bitvector failed to decode.
    BitVec(WireError),
    /// Schema failed validation.
    Schema(SchemaError),
    /// A page's payload does not match its recorded checksum.
    Checksum {
        /// CRC32 recorded in the page header.
        expected: u32,
        /// CRC32 of the payload actually read.
        actual: u32,
    },
    /// Internal inconsistency (e.g. column length vs row count).
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not a CIAO columnar file (bad magic)"),
            IoError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            IoError::Truncated => write!(f, "file truncated"),
            IoError::Decode(e) => write!(f, "column decode error: {e}"),
            IoError::BitVec(e) => write!(f, "bitvector decode error: {e}"),
            IoError::Schema(e) => write!(f, "schema error: {e}"),
            IoError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload is {actual:#010x}"
            ),
            IoError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<DecodeError> for IoError {
    fn from(e: DecodeError) -> Self {
        IoError::Decode(e)
    }
}

impl From<WireError> for IoError {
    fn from(e: WireError) -> Self {
        IoError::BitVec(e)
    }
}

impl From<SchemaError> for IoError {
    fn from(e: SchemaError) -> Self {
        IoError::Schema(e)
    }
}

/// Serializes a schema section: field count, then (name, dtype tag)
/// per field.
pub fn write_schema(schema: &Schema, buf: &mut BytesMut) {
    buf.put_u32_le(schema.len() as u32);
    for field in schema.fields() {
        buf.put_u32_le(field.name.len() as u32);
        buf.put_slice(field.name.as_bytes());
        buf.put_u8(field.dtype.tag());
    }
}

/// Serializes one block against its schema: row count, bitvector
/// entries, then each column's validity and encoded values.
pub fn write_block(schema: &Schema, block: &Block, buf: &mut BytesMut) {
    buf.put_u64_le(block.row_count() as u64);
    let bitvecs: Vec<(u32, &BitVec)> = block.metadata().bitvectors().collect();
    buf.put_u32_le(bitvecs.len() as u32);
    for (id, bv) in bitvecs {
        buf.put_u32_le(id);
        bv.encode_into(buf);
    }
    for (idx, _field) in schema.fields().iter().enumerate() {
        let col = block.column(idx);
        col.validity().encode_into(buf);
        match col.values() {
            ColumnValues::Str(v) | ColumnValues::Json(v) => encode_strings(v, buf),
            ColumnValues::Int(v) => encode_ints(v, buf),
            ColumnValues::Float(v) => encode_floats(v, buf),
            ColumnValues::Bool(b) => b.encode_into(buf),
        }
    }
}

/// Serializes a table to bytes.
pub fn write_table(table: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    let empty = Schema::new(vec![]).expect("empty schema is valid");
    let schema = table.schema().unwrap_or(&empty);
    write_schema(schema, &mut buf);

    buf.put_u32_le(table.blocks().len() as u32);
    for block in table.blocks() {
        write_block(schema, block, &mut buf);
    }
    buf.freeze()
}

fn get_u16(buf: &mut impl Buf) -> Result<u16, IoError> {
    if buf.remaining() < 2 {
        return Err(IoError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, IoError> {
    if buf.remaining() < 4 {
        return Err(IoError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_string(buf: &mut impl Buf) -> Result<String, IoError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(IoError::Truncated);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| IoError::Corrupt("field name not UTF-8".into()))
}

/// Deserializes a schema section written by [`write_schema`].
pub fn read_schema(buf: &mut &[u8]) -> Result<Arc<Schema>, IoError> {
    let field_count = get_u32(buf)? as usize;
    let mut fields = Vec::with_capacity(field_count);
    for _ in 0..field_count {
        let name = get_string(buf)?;
        if !buf.has_remaining() {
            return Err(IoError::Truncated);
        }
        let tag = buf.get_u8();
        let dtype = DataType::from_tag(tag)
            .ok_or_else(|| IoError::Corrupt(format!("unknown dtype tag {tag}")))?;
        fields.push(Field { name, dtype });
    }
    Ok(Arc::new(Schema::new(fields)?))
}

/// Deserializes one block written by [`write_block`] against `schema`.
/// Column stats are recomputed rather than trusted.
pub fn read_block(schema: &Arc<Schema>, buf: &mut &[u8]) -> Result<Block, IoError> {
    let row_count = get_u64(buf)? as usize;
    let bitvec_count = get_u32(buf)? as usize;
    let mut bitvecs = BTreeMap::new();
    for _ in 0..bitvec_count {
        let id = get_u32(buf)?;
        let bv = BitVec::decode_from(buf)?;
        if bv.len() != row_count {
            return Err(IoError::Corrupt(format!(
                "bitvec for predicate {id} has {} bits for {row_count} rows",
                bv.len()
            )));
        }
        bitvecs.insert(id, bv);
    }
    let mut columns = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let validity = BitVec::decode_from(buf)?;
        let values = match field.dtype {
            DataType::Str => ColumnValues::Str(decode_strings(buf)?),
            DataType::Json => ColumnValues::Json(decode_strings(buf)?),
            DataType::Int => ColumnValues::Int(decode_ints(buf)?),
            DataType::Float => ColumnValues::Float(decode_floats(buf)?),
            DataType::Bool => ColumnValues::Bool(BitVec::decode_from(buf)?),
        };
        let col = Column::new(values, validity);
        if col.len() != row_count {
            return Err(IoError::Corrupt(format!(
                "column `{}` has {} rows, block has {row_count}",
                field.name,
                col.len()
            )));
        }
        columns.push(col);
    }
    // Recompute stats rather than trusting the producer.
    let stats: Vec<ColumnStats> = columns.iter().map(ColumnStats::compute).collect();
    let metadata = BlockMetadata::new(row_count, stats, bitvecs);
    Ok(Block::new(Arc::clone(schema), columns, metadata))
}

/// Deserializes a table from bytes.
pub fn read_table(mut bytes: &[u8]) -> Result<Table, IoError> {
    let buf = &mut bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(IoError::BadMagic);
    }
    buf.advance(4);
    let version = get_u16(buf)?;
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }
    let schema = read_schema(buf)?;
    let block_count = get_u32(buf)? as usize;
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        blocks.push(read_block(&schema, buf)?);
    }
    Ok(Table::from_blocks(schema, blocks))
}

/// CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over `bytes`.
///
/// Bit-at-a-time with a small per-call constant factor — fine for page
/// headers and WAL records, whose payloads are bounded by segment and
/// snapshot sizes, not by the query hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames tagged payloads as checksummed pages:
/// `[kind u8][len u32 le][crc32 u32 le][payload]`.
///
/// This is the unit of corruption detection for every durable file:
/// a torn write or bit flip inside a page surfaces as
/// [`IoError::Checksum`]/[`IoError::Truncated`] on read, never as a
/// silently-wrong decode.
#[derive(Debug, Default)]
pub struct PageWriter {
    buf: BytesMut,
}

impl PageWriter {
    /// An empty page stream.
    pub fn new() -> PageWriter {
        PageWriter::default()
    }

    /// Appends one page of `kind` wrapping `payload`.
    pub fn page(&mut self, kind: u8, payload: &[u8]) -> &mut Self {
        self.buf.put_u8(kind);
        self.buf.put_u32_le(payload.len() as u32);
        self.buf.put_u32_le(crc32(payload));
        self.buf.put_slice(payload);
        self
    }

    /// The framed bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads back a [`PageWriter`] stream, verifying each page's checksum.
#[derive(Debug)]
pub struct PageReader<'a> {
    buf: &'a [u8],
}

impl<'a> PageReader<'a> {
    /// Starts reading a page stream.
    pub fn new(buf: &'a [u8]) -> PageReader<'a> {
        PageReader { buf }
    }

    /// The next `(kind, payload)` pair; `Ok(None)` at a clean end of
    /// input, [`IoError::Truncated`] on a partial page,
    /// [`IoError::Checksum`] on payload corruption.
    pub fn next_page(&mut self) -> Result<Option<(u8, &'a [u8])>, IoError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() < 9 {
            return Err(IoError::Truncated);
        }
        let kind = self.buf[0];
        let len = u32::from_le_bytes(self.buf[1..5].try_into().unwrap()) as usize;
        let expected = u32::from_le_bytes(self.buf[5..9].try_into().unwrap());
        let rest = &self.buf[9..];
        if rest.len() < len {
            return Err(IoError::Truncated);
        }
        let payload = &rest[..len];
        let actual = crc32(payload);
        if actual != expected {
            return Err(IoError::Checksum { expected, actual });
        }
        self.buf = &rest[len..];
        Ok(Some((kind, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ciao_json::parse;

    fn sample_table() -> Table {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("stars", DataType::Int),
                Field::new("score", DataType::Float),
                Field::new("active", DataType::Bool),
                Field::new("meta", DataType::Json),
            ])
            .unwrap(),
        );
        let mut tb = TableBuilder::with_block_size(schema, &[1, 5], 3);
        for i in 0..8i64 {
            let rec = parse(&format!(
                r#"{{"name":"level-{}","stars":{},"score":{}.5,"active":{},"meta":{{"i":{}}}}}"#,
                i % 3,
                i,
                i,
                i % 2 == 0,
                i
            ))
            .unwrap();
            let bits = BTreeMap::from([(1, i % 2 == 0), (5, i % 3 == 0)]);
            tb.push_record(&rec, &bits);
        }
        tb.finish()
    }

    #[test]
    fn roundtrip() {
        let table = sample_table();
        let bytes = write_table(&table);
        let back = read_table(&bytes).unwrap();
        assert_eq!(back.row_count(), table.row_count());
        assert_eq!(back.blocks().len(), table.blocks().len());
        assert_eq!(back.schema(), table.schema());
        // Full logical equality block by block.
        for (a, b) in table.blocks().iter().zip(back.blocks()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_empty_table() {
        let t = Table::default();
        let bytes = write_table(&t);
        let back = read_table(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bitvectors_survive() {
        let table = sample_table();
        let back = read_table(&write_table(&table)).unwrap();
        for (a, b) in table.blocks().iter().zip(back.blocks()) {
            assert_eq!(
                a.metadata().bitvec(1).unwrap(),
                b.metadata().bitvec(1).unwrap()
            );
            assert_eq!(
                a.metadata().bitvec(5).unwrap(),
                b.metadata().bitvec(5).unwrap()
            );
        }
    }

    #[test]
    fn stats_recomputed_on_read() {
        let table = sample_table();
        let back = read_table(&write_table(&table)).unwrap();
        let idx = back.schema().unwrap().index_of("stars").unwrap();
        let stats = &back.blocks()[0].metadata().column_stats[idx];
        assert_eq!(stats.min_int, Some(0));
        assert_eq!(stats.max_int, Some(2));
    }

    #[test]
    fn schema_and_block_codecs_compose() {
        // The extracted section codecs must agree with the monolithic
        // table format — write pieces, read pieces, same table.
        let table = sample_table();
        let schema = table.schema().unwrap();
        let mut buf = BytesMut::new();
        write_schema(schema, &mut buf);
        for block in table.blocks() {
            write_block(schema, block, &mut buf);
        }
        let bytes = buf.freeze();
        let mut cursor: &[u8] = &bytes;
        let schema_back = read_schema(&mut cursor).unwrap();
        assert_eq!(schema_back.as_ref(), schema);
        for block in table.blocks() {
            let back = read_block(&schema_back, &mut cursor).unwrap();
            assert_eq!(&back, block);
        }
        assert!(cursor.is_empty(), "codecs consumed exactly their bytes");
    }

    #[test]
    fn crc32_known_vectors() {
        // Pin the polynomial: these are the standard IEEE CRC-32 test
        // vectors (zlib's crc32() produces the same values).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn page_roundtrip_and_corruption_detection() {
        let mut w = PageWriter::new();
        w.page(1, b"hello").page(2, b"").page(7, &[0xAB; 300]);
        let bytes = w.finish();

        let mut r = PageReader::new(&bytes);
        assert_eq!(r.next_page().unwrap(), Some((1, &b"hello"[..])));
        assert_eq!(r.next_page().unwrap(), Some((2, &b""[..])));
        let (kind, payload) = r.next_page().unwrap().unwrap();
        assert_eq!((kind, payload.len()), (7, 300));
        assert_eq!(r.next_page().unwrap(), None);

        // A flipped payload byte is a checksum error, not bad data.
        let mut flipped = bytes.to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let mut r = PageReader::new(&flipped);
        r.next_page().unwrap();
        r.next_page().unwrap();
        assert!(matches!(r.next_page(), Err(IoError::Checksum { .. })));

        // Every mid-page prefix is truncated or checksum-broken, never
        // a silent success. (Cuts at exact page boundaries *are* valid
        // shorter streams — that is why durable files pair the page
        // layer with an end marker or page count.)
        let boundaries = [9 + 5, 9 + 5 + 9, bytes.len()];
        for cut in 1..bytes.len() {
            if boundaries.contains(&cut) {
                continue;
            }
            let mut r = PageReader::new(&bytes[..cut]);
            let mut outcome = Ok(());
            loop {
                match r.next_page() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            assert!(outcome.is_err(), "prefix of {cut} bytes read cleanly");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_table(b"NOPE....."), Err(IoError::BadMagic)));
        assert!(matches!(read_table(b""), Err(IoError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = write_table(&sample_table()).to_vec();
        bytes[4] = 0xff;
        assert!(matches!(read_table(&bytes), Err(IoError::BadVersion(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = write_table(&sample_table());
        // Every strict prefix must fail loudly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                read_table(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }
}
