//! On-disk format for columnar tables.
//!
//! ```text
//! [magic "CIAO"] [version u16]
//! [schema: field count u32, then (name, dtype tag) per field]
//! [block count u32]
//! per block:
//!   [row count u64]
//!   [bitvec count u32] then (predicate id u32, BitVec wire) per entry
//!   per column: [validity BitVec wire] [encoded values]
//! ```
//!
//! Everything is little-endian. Column stats are recomputed on read —
//! they are derived data, and recomputation keeps readers honest about
//! the actual payload.

use crate::block::Block;
use crate::column::{Column, ColumnValues};
use crate::encoding::{
    decode_floats, decode_ints, decode_strings, encode_floats, encode_ints, encode_strings,
    DecodeError,
};
use crate::metadata::{BlockMetadata, ColumnStats};
use crate::schema::{DataType, Field, Schema, SchemaError};
use crate::table::Table;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ciao_bitvec::{BitVec, WireError};
use std::collections::BTreeMap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"CIAO";
const VERSION: u16 = 1;

/// Read/write failures.
#[derive(Debug)]
pub enum IoError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended early.
    Truncated,
    /// Column payload failed to decode.
    Decode(DecodeError),
    /// A bitvector failed to decode.
    BitVec(WireError),
    /// Schema failed validation.
    Schema(SchemaError),
    /// Internal inconsistency (e.g. column length vs row count).
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not a CIAO columnar file (bad magic)"),
            IoError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            IoError::Truncated => write!(f, "file truncated"),
            IoError::Decode(e) => write!(f, "column decode error: {e}"),
            IoError::BitVec(e) => write!(f, "bitvector decode error: {e}"),
            IoError::Schema(e) => write!(f, "schema error: {e}"),
            IoError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<DecodeError> for IoError {
    fn from(e: DecodeError) -> Self {
        IoError::Decode(e)
    }
}

impl From<WireError> for IoError {
    fn from(e: WireError) -> Self {
        IoError::BitVec(e)
    }
}

impl From<SchemaError> for IoError {
    fn from(e: SchemaError) -> Self {
        IoError::Schema(e)
    }
}

/// Serializes a table to bytes.
pub fn write_table(table: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    let empty = Schema::new(vec![]).expect("empty schema is valid");
    let schema = table.schema().unwrap_or(&empty);
    buf.put_u32_le(schema.len() as u32);
    for field in schema.fields() {
        buf.put_u32_le(field.name.len() as u32);
        buf.put_slice(field.name.as_bytes());
        buf.put_u8(field.dtype.tag());
    }

    buf.put_u32_le(table.blocks().len() as u32);
    for block in table.blocks() {
        buf.put_u64_le(block.row_count() as u64);
        let bitvecs: Vec<(u32, &BitVec)> = block.metadata().bitvectors().collect();
        buf.put_u32_le(bitvecs.len() as u32);
        for (id, bv) in bitvecs {
            buf.put_u32_le(id);
            bv.encode_into(&mut buf);
        }
        for (idx, _field) in schema.fields().iter().enumerate() {
            let col = block.column(idx);
            col.validity().encode_into(&mut buf);
            match col.values() {
                ColumnValues::Str(v) | ColumnValues::Json(v) => encode_strings(v, &mut buf),
                ColumnValues::Int(v) => encode_ints(v, &mut buf),
                ColumnValues::Float(v) => encode_floats(v, &mut buf),
                ColumnValues::Bool(b) => b.encode_into(&mut buf),
            }
        }
    }
    buf.freeze()
}

fn get_u16(buf: &mut impl Buf) -> Result<u16, IoError> {
    if buf.remaining() < 2 {
        return Err(IoError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, IoError> {
    if buf.remaining() < 4 {
        return Err(IoError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, IoError> {
    if buf.remaining() < 8 {
        return Err(IoError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_string(buf: &mut impl Buf) -> Result<String, IoError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(IoError::Truncated);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| IoError::Corrupt("field name not UTF-8".into()))
}

/// Deserializes a table from bytes.
pub fn read_table(mut bytes: &[u8]) -> Result<Table, IoError> {
    let buf = &mut bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(IoError::BadMagic);
    }
    buf.advance(4);
    let version = get_u16(buf)?;
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }

    let field_count = get_u32(buf)? as usize;
    let mut fields = Vec::with_capacity(field_count);
    for _ in 0..field_count {
        let name = get_string(buf)?;
        if !buf.has_remaining() {
            return Err(IoError::Truncated);
        }
        let tag = buf.get_u8();
        let dtype = DataType::from_tag(tag)
            .ok_or_else(|| IoError::Corrupt(format!("unknown dtype tag {tag}")))?;
        fields.push(Field { name, dtype });
    }
    let schema = Arc::new(Schema::new(fields)?);

    let block_count = get_u32(buf)? as usize;
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        let row_count = get_u64(buf)? as usize;
        let bitvec_count = get_u32(buf)? as usize;
        let mut bitvecs = BTreeMap::new();
        for _ in 0..bitvec_count {
            let id = get_u32(buf)?;
            let bv = BitVec::decode_from(buf)?;
            if bv.len() != row_count {
                return Err(IoError::Corrupt(format!(
                    "bitvec for predicate {id} has {} bits for {row_count} rows",
                    bv.len()
                )));
            }
            bitvecs.insert(id, bv);
        }
        let mut columns = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            let validity = BitVec::decode_from(buf)?;
            let values = match field.dtype {
                DataType::Str => ColumnValues::Str(decode_strings(buf)?),
                DataType::Json => ColumnValues::Json(decode_strings(buf)?),
                DataType::Int => ColumnValues::Int(decode_ints(buf)?),
                DataType::Float => ColumnValues::Float(decode_floats(buf)?),
                DataType::Bool => ColumnValues::Bool(BitVec::decode_from(buf)?),
            };
            let col = Column::new(values, validity);
            if col.len() != row_count {
                return Err(IoError::Corrupt(format!(
                    "column `{}` has {} rows, block has {row_count}",
                    field.name,
                    col.len()
                )));
            }
            columns.push(col);
        }
        // Recompute stats rather than trusting the producer.
        let stats: Vec<ColumnStats> = columns.iter().map(recompute_stats).collect();
        let metadata = BlockMetadata::new(row_count, stats, bitvecs);
        blocks.push(Block::new(Arc::clone(&schema), columns, metadata));
    }
    Ok(Table::from_blocks(schema, blocks))
}

fn recompute_stats(col: &Column) -> ColumnStats {
    let mut stats = ColumnStats {
        null_count: col.null_count(),
        ..ColumnStats::default()
    };
    for row in 0..col.len() {
        if let crate::column::Cell::Int(v) = col.cell(row) {
            stats.min_int = Some(stats.min_int.map_or(v, |m| m.min(v)));
            stats.max_int = Some(stats.max_int.map_or(v, |m| m.max(v)));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ciao_json::parse;

    fn sample_table() -> Table {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("stars", DataType::Int),
                Field::new("score", DataType::Float),
                Field::new("active", DataType::Bool),
                Field::new("meta", DataType::Json),
            ])
            .unwrap(),
        );
        let mut tb = TableBuilder::with_block_size(schema, &[1, 5], 3);
        for i in 0..8i64 {
            let rec = parse(&format!(
                r#"{{"name":"level-{}","stars":{},"score":{}.5,"active":{},"meta":{{"i":{}}}}}"#,
                i % 3,
                i,
                i,
                i % 2 == 0,
                i
            ))
            .unwrap();
            let bits = BTreeMap::from([(1, i % 2 == 0), (5, i % 3 == 0)]);
            tb.push_record(&rec, &bits);
        }
        tb.finish()
    }

    #[test]
    fn roundtrip() {
        let table = sample_table();
        let bytes = write_table(&table);
        let back = read_table(&bytes).unwrap();
        assert_eq!(back.row_count(), table.row_count());
        assert_eq!(back.blocks().len(), table.blocks().len());
        assert_eq!(back.schema(), table.schema());
        // Full logical equality block by block.
        for (a, b) in table.blocks().iter().zip(back.blocks()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_empty_table() {
        let t = Table::default();
        let bytes = write_table(&t);
        let back = read_table(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bitvectors_survive() {
        let table = sample_table();
        let back = read_table(&write_table(&table)).unwrap();
        for (a, b) in table.blocks().iter().zip(back.blocks()) {
            assert_eq!(
                a.metadata().bitvec(1).unwrap(),
                b.metadata().bitvec(1).unwrap()
            );
            assert_eq!(
                a.metadata().bitvec(5).unwrap(),
                b.metadata().bitvec(5).unwrap()
            );
        }
    }

    #[test]
    fn stats_recomputed_on_read() {
        let table = sample_table();
        let back = read_table(&write_table(&table)).unwrap();
        let idx = back.schema().unwrap().index_of("stars").unwrap();
        let stats = &back.blocks()[0].metadata().column_stats[idx];
        assert_eq!(stats.min_int, Some(0));
        assert_eq!(stats.max_int, Some(2));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_table(b"NOPE....."), Err(IoError::BadMagic)));
        assert!(matches!(read_table(b""), Err(IoError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = write_table(&sample_table()).to_vec();
        bytes[4] = 0xff;
        assert!(matches!(read_table(&bytes), Err(IoError::BadVersion(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = write_table(&sample_table());
        // Every strict prefix must fail loudly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                read_table(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }
}
