//! Data blocks (row groups).

use crate::column::{Cell, Column, ColumnBuilder};
use crate::metadata::{BlockMetadata, ColumnStats};
use crate::schema::Schema;
use ciao_bitvec::BitVec;
use ciao_json::JsonValue;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One immutable row group: a column chunk per schema field plus
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    metadata: BlockMetadata,
}

impl Block {
    /// Assembles a block, checking schema/column consistency.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>, metadata: BlockMetadata) -> Block {
        assert_eq!(columns.len(), schema.len(), "column count mismatch");
        for (col, field) in columns.iter().zip(schema.fields()) {
            assert_eq!(
                col.dtype(),
                field.dtype,
                "column `{}` type mismatch",
                field.name
            );
            assert_eq!(
                col.len(),
                metadata.row_count,
                "column `{}` row count",
                field.name
            );
        }
        Block {
            schema,
            columns,
            metadata,
        }
    }

    /// Rows in the block.
    pub fn row_count(&self) -> usize {
        self.metadata.row_count
    }

    /// The block's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Column chunk by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column chunk by field name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// One cell by field name; `Cell::Null` for unknown fields (the
    /// field simply never appeared in this table).
    pub fn cell(&self, row: usize, field: &str) -> Cell<'_> {
        match self.schema.index_of(field) {
            Some(i) => self.columns[i].cell(row),
            None => Cell::Null,
        }
    }

    /// Block metadata (bitvectors, stats).
    pub fn metadata(&self) -> &BlockMetadata {
        &self.metadata
    }

    /// Reconstructs row `row` as a JSON object (NULL cells omitted, so
    /// the record round-trips the way the original sparse log line was
    /// written).
    pub fn to_record(&self, row: usize) -> JsonValue {
        let pairs = self
            .schema
            .fields()
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let cell = self.columns[i].cell_json(row);
                if cell.is_null() {
                    None
                } else {
                    Some((f.name.clone(), cell))
                }
            })
            .collect();
        JsonValue::Object(pairs)
    }
}

/// Accumulates rows (plus per-predicate bits) into a block.
#[derive(Debug)]
pub struct BlockBuilder {
    schema: Arc<Schema>,
    builders: Vec<ColumnBuilder>,
    bits: BTreeMap<u32, BitVec>,
    rows: usize,
}

impl BlockBuilder {
    /// Creates a builder for a schema and the set of pushed predicate
    /// ids whose bits each row will carry.
    pub fn new(schema: Arc<Schema>, predicate_ids: &[u32]) -> BlockBuilder {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype))
            .collect();
        BlockBuilder {
            schema,
            builders,
            bits: predicate_ids
                .iter()
                .map(|&id| (id, BitVec::new()))
                .collect(),
            rows: 0,
        }
    }

    /// Appends one parsed record with its predicate bits. `bits` must
    /// cover exactly the ids declared at construction.
    pub fn push_record(&mut self, record: &JsonValue, bits: &BTreeMap<u32, bool>) {
        assert_eq!(bits.len(), self.bits.len(), "predicate bit arity mismatch");
        for (i, field) in self.schema.fields().iter().enumerate() {
            self.builders[i].push(record.get(&field.name));
        }
        for (id, bv) in &mut self.bits {
            let bit = *bits
                .get(id)
                .unwrap_or_else(|| panic!("missing bit for predicate {id}"));
            bv.push(bit);
        }
        self.rows += 1;
    }

    /// Rows staged so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are staged.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Total coercion failures across columns (values stored as NULL).
    pub fn coercion_failures(&self) -> usize {
        self.builders
            .iter()
            .map(ColumnBuilder::coercion_failures)
            .sum()
    }

    /// Finalizes the block, computing per-column stats.
    pub fn finish(self) -> Block {
        let columns: Vec<Column> = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        let stats = columns.iter().map(ColumnStats::compute).collect();
        let metadata = BlockMetadata::new(self.rows, stats, self.bits);
        Block {
            schema: self.schema,
            columns,
            metadata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};
    use ciao_json::parse;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Field::new("name", DataType::Str),
                Field::new("stars", DataType::Int),
                Field::new("active", DataType::Bool),
            ])
            .unwrap(),
        )
    }

    fn bits(p1: bool, p2: bool) -> BTreeMap<u32, bool> {
        BTreeMap::from([(1, p1), (2, p2)])
    }

    fn sample_block() -> Block {
        let mut b = BlockBuilder::new(schema(), &[1, 2]);
        b.push_record(
            &parse(r#"{"name":"Bob","stars":5,"active":true}"#).unwrap(),
            &bits(true, false),
        );
        b.push_record(
            &parse(r#"{"name":"Alice","stars":2}"#).unwrap(),
            &bits(false, true),
        );
        b.push_record(
            &parse(r#"{"stars":4,"active":false}"#).unwrap(),
            &bits(true, true),
        );
        b.finish()
    }

    #[test]
    fn build_and_access() {
        let block = sample_block();
        assert_eq!(block.row_count(), 3);
        assert_eq!(block.cell(0, "name").as_str(), Some("Bob"));
        assert_eq!(block.cell(1, "stars").as_i64(), Some(2));
        assert!(block.cell(1, "active").is_null()); // absent key
        assert!(block.cell(2, "name").is_null());
        assert!(block.cell(0, "no_such_field").is_null());
        assert_eq!(block.column_by_name("stars").unwrap().len(), 3);
        assert!(block.column_by_name("zzz").is_none());
    }

    #[test]
    fn metadata_bitvectors() {
        let block = sample_block();
        assert_eq!(
            block.metadata().bitvec(1).unwrap().ones_positions(),
            vec![0, 2]
        );
        assert_eq!(
            block.metadata().bitvec(2).unwrap().ones_positions(),
            vec![1, 2]
        );
        let mask = block.metadata().skip_mask(&[1, 2]).unwrap();
        assert_eq!(mask.ones_positions(), vec![2]);
    }

    #[test]
    fn stats_computed() {
        let block = sample_block();
        let stars_idx = block.schema().index_of("stars").unwrap();
        let stats = &block.metadata().column_stats[stars_idx];
        assert_eq!(stats.min_int, Some(2));
        assert_eq!(stats.max_int, Some(5));
        assert_eq!(stats.null_count, 0);
        let name_idx = block.schema().index_of("name").unwrap();
        assert_eq!(block.metadata().column_stats[name_idx].null_count, 1);
    }

    #[test]
    fn to_record_omits_nulls() {
        let block = sample_block();
        let rec = block.to_record(1);
        assert_eq!(ciao_json::to_string(&rec), r#"{"name":"Alice","stars":2}"#);
    }

    #[test]
    #[should_panic(expected = "missing bit")]
    fn missing_predicate_bit_panics() {
        let mut b = BlockBuilder::new(schema(), &[1, 2]);
        let wrong = BTreeMap::from([(1, true), (3, false)]);
        b.push_record(&parse(r#"{"name":"x"}"#).unwrap(), &wrong);
    }

    #[test]
    fn empty_block() {
        let b = BlockBuilder::new(schema(), &[]);
        assert!(b.is_empty());
        let block = b.finish();
        assert_eq!(block.row_count(), 0);
        assert_eq!(block.metadata().bitvector_count(), 0);
    }

    #[test]
    fn coercion_failures_surface() {
        let mut b = BlockBuilder::new(schema(), &[]);
        b.push_record(&parse(r#"{"stars":"five"}"#).unwrap(), &BTreeMap::new());
        assert_eq!(b.coercion_failures(), 1);
    }
}
