//! Typed columns with validity bitmaps.

use crate::schema::DataType;
use ciao_bitvec::BitVec;
use ciao_json::{to_string, JsonValue};

/// A borrowed view of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell<'a> {
    /// SQL NULL (absent or JSON null).
    Null,
    /// String value.
    Str(&'a str),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Nested JSON kept as serialized text.
    Json(&'a str),
}

impl<'a> Cell<'a> {
    /// True for NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// String payload for `Str` cells.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload for `Int` cells.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload (`Int` widened) for numeric cells.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Float(f) => Some(*f),
            Cell::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean payload for `Bool` cells.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Cell::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Physical storage for one column of one block.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    /// Strings, stored dictionary-style by the io layer; in memory a
    /// plain vector keeps scans simple.
    Str(Vec<String>),
    /// Integers.
    Int(Vec<i64>),
    /// Floats.
    Float(Vec<f64>),
    /// Booleans, bit-packed.
    Bool(BitVec),
    /// Serialized nested JSON.
    Json(Vec<String>),
}

impl ColumnValues {
    fn len(&self) -> usize {
        match self {
            ColumnValues::Str(v) | ColumnValues::Json(v) => v.len(),
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Float(v) => v.len(),
            ColumnValues::Bool(b) => b.len(),
        }
    }
}

/// A complete column: values plus a validity bitmap (`valid.bit(i)` ⇔
/// row `i` is non-null). Invalid rows hold an arbitrary default value.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    values: ColumnValues,
    valid: BitVec,
}

impl Column {
    /// Assembles a column, checking the bitmap length.
    pub fn new(values: ColumnValues, valid: BitVec) -> Column {
        assert_eq!(values.len(), valid.len(), "validity bitmap length mismatch");
        Column { values, valid }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.valid.count_zeros()
    }

    /// The storage type.
    pub fn dtype(&self) -> DataType {
        match &self.values {
            ColumnValues::Str(_) => DataType::Str,
            ColumnValues::Int(_) => DataType::Int,
            ColumnValues::Float(_) => DataType::Float,
            ColumnValues::Bool(_) => DataType::Bool,
            ColumnValues::Json(_) => DataType::Json,
        }
    }

    /// Reads one cell.
    pub fn cell(&self, row: usize) -> Cell<'_> {
        assert!(
            row < self.len(),
            "row {row} out of range (len {})",
            self.len()
        );
        if !self.valid.bit(row) {
            return Cell::Null;
        }
        match &self.values {
            ColumnValues::Str(v) => Cell::Str(&v[row]),
            ColumnValues::Int(v) => Cell::Int(v[row]),
            ColumnValues::Float(v) => Cell::Float(v[row]),
            ColumnValues::Bool(b) => Cell::Bool(b.bit(row)),
            ColumnValues::Json(v) => Cell::Json(&v[row]),
        }
    }

    /// Raw storage access for the io/encoding layer.
    pub fn values(&self) -> &ColumnValues {
        &self.values
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &BitVec {
        &self.valid
    }

    /// Reconstructs the cell as a [`JsonValue`] (Json cells re-parse).
    pub fn cell_json(&self, row: usize) -> JsonValue {
        match self.cell(row) {
            Cell::Null => JsonValue::Null,
            Cell::Str(s) => JsonValue::from(s),
            Cell::Int(i) => JsonValue::from(i),
            Cell::Float(f) => JsonValue::from(f),
            Cell::Bool(b) => JsonValue::from(b),
            Cell::Json(s) => ciao_json::parse(s).expect("stored JSON is valid by construction"),
        }
    }
}

/// Incrementally builds one column from JSON cells.
///
/// Type handling is lenient by design (CIAO loads heterogeneous machine
/// logs): a value that does not fit the declared type is stored as NULL
/// and counted in [`ColumnBuilder::coercion_failures`], never dropped
/// silently and never a hard error at the row level.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    values: ColumnValues,
    valid: BitVec,
    coercion_failures: usize,
}

impl ColumnBuilder {
    /// Creates a builder for the given type.
    pub fn new(dtype: DataType) -> ColumnBuilder {
        let values = match dtype {
            DataType::Str => ColumnValues::Str(Vec::new()),
            DataType::Int => ColumnValues::Int(Vec::new()),
            DataType::Float => ColumnValues::Float(Vec::new()),
            DataType::Bool => ColumnValues::Bool(BitVec::new()),
            DataType::Json => ColumnValues::Json(Vec::new()),
        };
        ColumnBuilder {
            dtype,
            values,
            valid: BitVec::new(),
            coercion_failures: 0,
        }
    }

    /// Appends a cell from an optional JSON value (`None` = key absent).
    pub fn push(&mut self, value: Option<&JsonValue>) {
        let value = match value {
            None | Some(JsonValue::Null) => {
                self.push_null();
                return;
            }
            Some(v) => v,
        };
        match (&mut self.values, value) {
            (ColumnValues::Str(col), JsonValue::String(s)) => {
                col.push(s.clone());
                self.valid.push(true);
            }
            (ColumnValues::Int(col), JsonValue::Number(n)) if n.is_int() => {
                col.push(n.as_i64().expect("is_int"));
                self.valid.push(true);
            }
            (ColumnValues::Float(col), JsonValue::Number(n)) => {
                col.push(n.as_f64());
                self.valid.push(true);
            }
            (ColumnValues::Bool(col), JsonValue::Bool(b)) => {
                col.push(*b);
                self.valid.push(true);
            }
            (ColumnValues::Json(col), v @ (JsonValue::Array(_) | JsonValue::Object(_))) => {
                col.push(to_string(v));
                self.valid.push(true);
            }
            _ => {
                self.coercion_failures += 1;
                self.push_null();
            }
        }
    }

    /// Appends a NULL cell.
    pub fn push_null(&mut self) {
        match &mut self.values {
            ColumnValues::Str(col) => col.push(String::new()),
            ColumnValues::Int(col) => col.push(0),
            ColumnValues::Float(col) => col.push(0.0),
            ColumnValues::Bool(col) => col.push(false),
            ColumnValues::Json(col) => col.push("null".to_owned()),
        }
        self.valid.push(false);
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True when no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Values that failed coercion and were stored as NULL.
    pub fn coercion_failures(&self) -> usize {
        self.coercion_failures
    }

    /// The declared type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Finalizes the column.
    pub fn finish(self) -> Column {
        Column {
            values: self.values,
            valid: self.valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciao_json::parse;

    #[test]
    fn build_and_read_back() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Some(&JsonValue::from(5)));
        b.push(None);
        b.push(Some(&JsonValue::Null));
        b.push(Some(&JsonValue::from(-3)));
        let col = b.finish();
        assert_eq!(col.len(), 4);
        assert_eq!(col.null_count(), 2);
        assert_eq!(col.cell(0), Cell::Int(5));
        assert_eq!(col.cell(1), Cell::Null);
        assert_eq!(col.cell(2), Cell::Null);
        assert_eq!(col.cell(3), Cell::Int(-3));
        assert_eq!(col.dtype(), DataType::Int);
    }

    #[test]
    fn coercion_failures_become_null() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Some(&JsonValue::from("not an int")));
        b.push(Some(&JsonValue::from(2.5))); // float into int column
        b.push(Some(&JsonValue::from(7)));
        let failures = b.coercion_failures();
        let col = b.finish();
        assert_eq!(failures, 2);
        assert_eq!(col.cell(0), Cell::Null);
        assert_eq!(col.cell(1), Cell::Null);
        assert_eq!(col.cell(2), Cell::Int(7));
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push(Some(&JsonValue::from(2)));
        b.push(Some(&JsonValue::from(2.5)));
        let col = b.finish();
        assert_eq!(col.cell(0), Cell::Float(2.0));
        assert_eq!(col.cell(1), Cell::Float(2.5));
    }

    #[test]
    fn bool_column_bitpacked() {
        let mut b = ColumnBuilder::new(DataType::Bool);
        for i in 0..100 {
            b.push(Some(&JsonValue::from(i % 3 == 0)));
        }
        let col = b.finish();
        assert_eq!(col.cell(0), Cell::Bool(true));
        assert_eq!(col.cell(1), Cell::Bool(false));
        assert_eq!(col.null_count(), 0);
    }

    #[test]
    fn json_column_roundtrips() {
        let mut b = ColumnBuilder::new(DataType::Json);
        let v = parse(r#"{"a":[1,2]}"#).unwrap();
        b.push(Some(&v));
        b.push(Some(&JsonValue::from("plain string"))); // coercion failure
        let col = b.finish();
        assert_eq!(col.cell(0), Cell::Json(r#"{"a":[1,2]}"#));
        assert_eq!(col.cell_json(0), v);
        assert!(col.cell(1).is_null());
    }

    #[test]
    fn str_column() {
        let mut b = ColumnBuilder::new(DataType::Str);
        b.push(Some(&JsonValue::from("hello")));
        b.push_null();
        let col = b.finish();
        assert_eq!(col.cell(0).as_str(), Some("hello"));
        assert!(col.cell(1).is_null());
        assert_eq!(col.cell_json(0), JsonValue::from("hello"));
        assert_eq!(col.cell_json(1), JsonValue::Null);
    }

    #[test]
    fn cell_accessors() {
        assert_eq!(Cell::Int(3).as_f64(), Some(3.0));
        assert_eq!(Cell::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Cell::Str("x").as_i64(), None);
        assert_eq!(Cell::Bool(true).as_bool(), Some(true));
        assert!(Cell::Null.is_null());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_out_of_range() {
        let col = ColumnBuilder::new(DataType::Int).finish();
        col.cell(0);
    }
}
