//! Block-level metadata.
//!
//! Each data block of the columnar file carries the bitvectors of every
//! pushed-down predicate, re-packed to the block's rows at load time
//! (paper §VI-A: "we store the bit-vector information of this object
//! into the metadata of each data block"). Query processing ANDs the
//! bitvectors of a query's pushed clauses to skip rows (§VI-B).

use ciao_bitvec::BitVec;
use std::collections::BTreeMap;

/// Per-column statistics, kept for min/max pruning and diagnostics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// NULL rows in this block's column chunk.
    pub null_count: usize,
    /// Minimum integer value (Int columns with ≥1 non-null row only).
    pub min_int: Option<i64>,
    /// Maximum integer value.
    pub max_int: Option<i64>,
}

/// Metadata attached to one block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockMetadata {
    /// Rows in the block.
    pub row_count: usize,
    /// One stats entry per schema column.
    pub column_stats: Vec<ColumnStats>,
    /// Predicate id → validity bits for this block's rows.
    bitvectors: BTreeMap<u32, BitVec>,
}

impl BlockMetadata {
    /// Assembles metadata, validating bitvector lengths.
    pub fn new(
        row_count: usize,
        column_stats: Vec<ColumnStats>,
        bitvectors: BTreeMap<u32, BitVec>,
    ) -> BlockMetadata {
        for (id, bv) in &bitvectors {
            assert_eq!(
                bv.len(),
                row_count,
                "bitvector for predicate {id} has {} bits for {row_count} rows",
                bv.len()
            );
        }
        BlockMetadata {
            row_count,
            column_stats,
            bitvectors,
        }
    }

    /// The bitvector for one predicate id.
    pub fn bitvec(&self, predicate_id: u32) -> Option<&BitVec> {
        self.bitvectors.get(&predicate_id)
    }

    /// All stored `(predicate id, bitvector)` pairs, ordered by id.
    pub fn bitvectors(&self) -> impl Iterator<Item = (u32, &BitVec)> {
        self.bitvectors.iter().map(|(&id, bv)| (id, bv))
    }

    /// Number of stored bitvectors.
    pub fn bitvector_count(&self) -> usize {
        self.bitvectors.len()
    }

    /// Intersection (AND) of the bitvectors for `predicate_ids` — the
    /// §VI-B skip mask. Returns `None` when any id is missing, which
    /// callers must treat as "cannot skip, scan everything":
    /// a missing bitvector says nothing about which rows qualify.
    pub fn skip_mask(&self, predicate_ids: &[u32]) -> Option<BitVec> {
        let mut acc: Option<BitVec> = None;
        for id in predicate_ids {
            let bv = self.bitvectors.get(id)?;
            acc = Some(match acc {
                None => bv.clone(),
                Some(mut m) => {
                    m.and_assign(bv);
                    m
                }
            });
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BlockMetadata {
        let mut bvs = BTreeMap::new();
        bvs.insert(1, BitVec::from_bools(&[true, false, true, false]));
        bvs.insert(2, BitVec::from_bools(&[true, true, false, false]));
        BlockMetadata::new(4, vec![], bvs)
    }

    #[test]
    fn lookup() {
        let m = meta();
        assert_eq!(m.bitvec(1).unwrap().ones_positions(), vec![0, 2]);
        assert!(m.bitvec(9).is_none());
        assert_eq!(m.bitvector_count(), 2);
        assert_eq!(
            m.bitvectors().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn skip_mask_is_intersection() {
        let m = meta();
        let mask = m.skip_mask(&[1, 2]).unwrap();
        assert_eq!(mask.ones_positions(), vec![0]);
        let single = m.skip_mask(&[2]).unwrap();
        assert_eq!(single.ones_positions(), vec![0, 1]);
    }

    #[test]
    fn missing_predicate_yields_none() {
        let m = meta();
        assert!(m.skip_mask(&[1, 99]).is_none());
        assert!(m.skip_mask(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "bits for")]
    fn length_mismatch_rejected() {
        let mut bvs = BTreeMap::new();
        bvs.insert(1, BitVec::zeros(3));
        BlockMetadata::new(4, vec![], bvs);
    }
}
