//! Block-level metadata.
//!
//! Each data block of the columnar file carries the bitvectors of every
//! pushed-down predicate, re-packed to the block's rows at load time
//! (paper §VI-A: "we store the bit-vector information of this object
//! into the metadata of each data block"). Query processing ANDs the
//! bitvectors of a query's pushed clauses to skip rows (§VI-B).

use crate::column::{Cell, Column};
use ciao_bitvec::BitVec;
use std::collections::{BTreeMap, BTreeSet};

/// Cardinality ceiling for [`ColumnStats::str_dict`]: above this many
/// distinct strings a dictionary stops being a useful zone map (and the
/// column chunk would not dictionary-encode well on disk either).
pub const STR_DICT_STATS_MAX: usize = 32;

/// Per-column statistics, kept for min/max pruning and diagnostics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// NULL rows in this block's column chunk.
    pub null_count: usize,
    /// Minimum integer value (Int columns with ≥1 non-null row only).
    pub min_int: Option<i64>,
    /// Maximum integer value.
    pub max_int: Option<i64>,
    /// Every distinct non-null string of a low-cardinality string
    /// column chunk (sorted), mirroring the on-disk dictionary
    /// encoding. `Some` ⇒ the list is **complete**, so a value absent
    /// from it provably matches no row — the string analogue of the
    /// int min/max zone map. `None` when cardinality exceeds
    /// [`STR_DICT_STATS_MAX`] or the column holds no strings.
    pub str_dict: Option<Vec<String>>,
}

impl ColumnStats {
    /// Computes the statistics of one column chunk. The single
    /// implementation behind both the block-build path and the
    /// snapshot-reload path, so pruning behaves identically across a
    /// restart.
    pub fn compute(col: &Column) -> ColumnStats {
        let mut stats = ColumnStats {
            null_count: col.null_count(),
            ..ColumnStats::default()
        };
        let mut dict: BTreeSet<&str> = BTreeSet::new();
        let mut dict_overflow = false;
        for row in 0..col.len() {
            match col.cell(row) {
                Cell::Int(v) => {
                    stats.min_int = Some(stats.min_int.map_or(v, |m| m.min(v)));
                    stats.max_int = Some(stats.max_int.map_or(v, |m| m.max(v)));
                }
                Cell::Str(s) if !dict_overflow => {
                    dict.insert(s);
                    if dict.len() > STR_DICT_STATS_MAX {
                        dict_overflow = true;
                        dict.clear();
                    }
                }
                _ => {}
            }
        }
        if !dict_overflow && !dict.is_empty() {
            stats.str_dict = Some(dict.into_iter().map(str::to_owned).collect());
        }
        stats
    }

    /// True when `value` provably matches no row of this column chunk:
    /// the dictionary is complete and does not contain it.
    pub fn str_excludes(&self, value: &str) -> bool {
        match &self.str_dict {
            Some(dict) => dict.binary_search_by(|e| e.as_str().cmp(value)).is_err(),
            None => false,
        }
    }

    /// True when no string of this column chunk can contain `needle`.
    pub fn str_excludes_substring(&self, needle: &str) -> bool {
        match &self.str_dict {
            Some(dict) => !dict.iter().any(|e| e.contains(needle)),
            None => false,
        }
    }
}

/// Metadata attached to one block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockMetadata {
    /// Rows in the block.
    pub row_count: usize,
    /// One stats entry per schema column.
    pub column_stats: Vec<ColumnStats>,
    /// Predicate id → validity bits for this block's rows.
    bitvectors: BTreeMap<u32, BitVec>,
}

impl BlockMetadata {
    /// Assembles metadata, validating bitvector lengths.
    pub fn new(
        row_count: usize,
        column_stats: Vec<ColumnStats>,
        bitvectors: BTreeMap<u32, BitVec>,
    ) -> BlockMetadata {
        for (id, bv) in &bitvectors {
            assert_eq!(
                bv.len(),
                row_count,
                "bitvector for predicate {id} has {} bits for {row_count} rows",
                bv.len()
            );
        }
        BlockMetadata {
            row_count,
            column_stats,
            bitvectors,
        }
    }

    /// The bitvector for one predicate id.
    pub fn bitvec(&self, predicate_id: u32) -> Option<&BitVec> {
        self.bitvectors.get(&predicate_id)
    }

    /// All stored `(predicate id, bitvector)` pairs, ordered by id.
    pub fn bitvectors(&self) -> impl Iterator<Item = (u32, &BitVec)> {
        self.bitvectors.iter().map(|(&id, bv)| (id, bv))
    }

    /// Number of stored bitvectors.
    pub fn bitvector_count(&self) -> usize {
        self.bitvectors.len()
    }

    /// Intersection (AND) of the bitvectors for `predicate_ids` — the
    /// §VI-B skip mask. Returns `None` when any id is missing, which
    /// callers must treat as "cannot skip, scan everything":
    /// a missing bitvector says nothing about which rows qualify.
    pub fn skip_mask(&self, predicate_ids: &[u32]) -> Option<BitVec> {
        let bvs: Vec<&BitVec> = predicate_ids
            .iter()
            .map(|id| self.bitvectors.get(id))
            .collect::<Option<_>>()?;
        BitVec::and_all(&bvs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BlockMetadata {
        let mut bvs = BTreeMap::new();
        bvs.insert(1, BitVec::from_bools(&[true, false, true, false]));
        bvs.insert(2, BitVec::from_bools(&[true, true, false, false]));
        BlockMetadata::new(4, vec![], bvs)
    }

    #[test]
    fn lookup() {
        let m = meta();
        assert_eq!(m.bitvec(1).unwrap().ones_positions(), vec![0, 2]);
        assert!(m.bitvec(9).is_none());
        assert_eq!(m.bitvector_count(), 2);
        assert_eq!(
            m.bitvectors().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn stats_build_a_complete_string_dictionary() {
        let mut b = crate::column::ColumnBuilder::new(crate::schema::DataType::Str);
        for i in 0..100 {
            b.push(Some(&ciao_json::JsonValue::String(format!(
                "lvl-{}",
                i % 3
            ))));
        }
        b.push(None);
        let col = b.finish();
        let stats = ColumnStats::compute(&col);
        assert_eq!(stats.null_count, 1);
        assert_eq!(
            stats.str_dict,
            Some(vec!["lvl-0".into(), "lvl-1".into(), "lvl-2".into()])
        );
        assert!(!stats.str_excludes("lvl-1"));
        assert!(stats.str_excludes("lvl-9"));
        assert!(!stats.str_excludes_substring("vl-2"));
        assert!(stats.str_excludes_substring("zzz"));
    }

    #[test]
    fn high_cardinality_drops_the_dictionary() {
        let mut b = crate::column::ColumnBuilder::new(crate::schema::DataType::Str);
        for i in 0..(STR_DICT_STATS_MAX + 1) {
            b.push(Some(&ciao_json::JsonValue::String(format!("unique-{i}"))));
        }
        let stats = ColumnStats::compute(&b.finish());
        assert_eq!(stats.str_dict, None);
        // No dictionary ⇒ nothing is provably excluded.
        assert!(!stats.str_excludes("anything"));
        assert!(!stats.str_excludes_substring("anything"));
    }

    #[test]
    fn skip_mask_is_intersection() {
        let m = meta();
        let mask = m.skip_mask(&[1, 2]).unwrap();
        assert_eq!(mask.ones_positions(), vec![0]);
        let single = m.skip_mask(&[2]).unwrap();
        assert_eq!(single.ones_positions(), vec![0, 1]);
    }

    #[test]
    fn missing_predicate_yields_none() {
        let m = meta();
        assert!(m.skip_mask(&[1, 99]).is_none());
        assert!(m.skip_mask(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "bits for")]
    fn length_mismatch_rejected() {
        let mut bvs = BTreeMap::new();
        bvs.insert(1, BitVec::zeros(3));
        BlockMetadata::new(4, vec![], bvs);
    }
}
