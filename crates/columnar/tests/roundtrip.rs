//! Property tests: arbitrary flat records → columnar table → bytes →
//! table must preserve every cell, and reconstructed records must
//! match the originals modulo NULL omission.

use ciao_columnar::{read_table, write_table, Schema, TableBuilder};
use ciao_json::JsonValue;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Records over a fixed key pool with per-key stable types, so schema
/// inference always succeeds (the type-conflict path has its own test).
fn arb_records() -> impl Strategy<Value = Vec<JsonValue>> {
    let record = (
        prop::option::of("[a-zA-Z0-9 ]{0,12}"),
        prop::option::of(-1000i64..1000),
        prop::option::of(any::<bool>()),
        prop::option::of(prop::num::f64::NORMAL),
    )
        .prop_map(|(s, i, b, f)| {
            let mut pairs: Vec<(String, JsonValue)> = Vec::new();
            if let Some(s) = s {
                pairs.push(("s".into(), JsonValue::from(s)));
            }
            if let Some(i) = i {
                pairs.push(("i".into(), JsonValue::from(i)));
            }
            if let Some(b) = b {
                pairs.push(("b".into(), JsonValue::from(b)));
            }
            if let Some(f) = f {
                pairs.push(("f".into(), JsonValue::from(f)));
            }
            // Guarantee at least one key so inference sees an object.
            if pairs.is_empty() {
                pairs.push(("i".into(), JsonValue::from(0)));
            }
            JsonValue::Object(pairs)
        });
    prop::collection::vec(record, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_io_roundtrip(records in arb_records(), block_size in 1usize..16) {
        let schema = Arc::new(Schema::infer(&records).unwrap());
        let mut tb = TableBuilder::with_block_size(Arc::clone(&schema), &[7], block_size);
        for (i, rec) in records.iter().enumerate() {
            tb.push_record(rec, &BTreeMap::from([(7, i % 2 == 0)]));
        }
        let table = tb.finish();
        prop_assert_eq!(table.row_count(), records.len());

        let bytes = write_table(&table);
        let back = read_table(&bytes).unwrap();
        prop_assert_eq!(back.row_count(), table.row_count());
        for (a, b) in table.blocks().iter().zip(back.blocks()) {
            prop_assert_eq!(a, b);
        }

        // Reconstructed records match originals: every original pair
        // must be present (floats compared via bits through JsonValue
        // PartialEq, which is fine for round-tripped values).
        for (orig, rebuilt) in records.iter().zip(back.iter_records()) {
            for (k, v) in orig.as_object().unwrap() {
                if v.is_null() {
                    prop_assert!(rebuilt.get(k).is_none());
                } else {
                    prop_assert_eq!(rebuilt.get(k), Some(v), "key {}", k);
                }
            }
        }
    }

    #[test]
    fn bitvectors_roundtrip(n in 1usize..100, block_size in 1usize..8) {
        let records: Vec<JsonValue> = (0..n)
            .map(|i| JsonValue::object([("x", JsonValue::from(i as i64))]))
            .collect();
        let schema = Arc::new(Schema::infer(&records).unwrap());
        let mut tb = TableBuilder::with_block_size(schema, &[1, 2], block_size);
        for (i, rec) in records.iter().enumerate() {
            tb.push_record(rec, &BTreeMap::from([(1, i % 3 == 0), (2, i % 5 == 0)]));
        }
        let table = tb.finish();
        let back = read_table(&write_table(&table)).unwrap();

        // Reassemble global bit positions from per-block bitvectors.
        let mut global_ones_p1 = Vec::new();
        let mut offset = 0;
        for block in back.blocks() {
            let bv = block.metadata().bitvec(1).unwrap();
            global_ones_p1.extend(bv.iter_ones().map(|r| r + offset));
            offset += block.row_count();
        }
        let expected: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
        prop_assert_eq!(global_ones_p1, expected);
    }
}
