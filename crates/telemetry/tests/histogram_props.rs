//! Property tests for the histogram invariants the observability
//! layer leans on: quantile estimates stay within one bucket of the
//! exact rank statistic, and merging shard histograms is associative
//! and commutative (so fleet-wide aggregation order never changes the
//! reported distribution).

use ciao_telemetry::histogram::bucket_of;
use ciao_telemetry::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact rank statistic a quantile estimate is judged against:
/// `sorted[ceil(q·n) - 1]` (clamped to a valid rank).
fn exact_rank(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Values spanning the linear buckets, the log-linear range, and the
/// extreme tail, so bucket-boundary arithmetic is exercised everywhere.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            0u64..100_000,
            0u64..10_000_000_000,
            Just(u64::MAX),
        ],
        1..300,
    )
}

proptest! {
    #[test]
    fn quantiles_within_one_bucket_of_exact_rank(values in arb_values()) {
        let h = hist_of(&values);
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let est = h.quantile(q);
            let exact = exact_rank(&values, q);
            let (eb, xb) = (bucket_of(est), bucket_of(exact));
            prop_assert!(
                eb.abs_diff(xb) <= 1,
                "q={q}: estimate {est} (bucket {eb}) vs exact {exact} (bucket {xb})"
            );
        }
        // The extremes are exact, not merely bucket-accurate.
        prop_assert_eq!(h.quantile(1.0), *values.iter().max().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    #[test]
    fn merge_is_commutative(a in arb_values(), b in arb_values()) {
        let ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    #[test]
    fn merge_is_associative(a in arb_values(), b in arb_values(), c in arb_values()) {
        // (a + b) + c
        let left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // a + (b + c)
        let bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let right = hist_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    #[test]
    fn merge_equals_recording_concatenation(a in arb_values(), b in arb_values()) {
        let merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged.snapshot(), hist_of(&all).snapshot());
    }

    #[test]
    fn every_value_lands_inside_its_bucket(v in any::<u64>()) {
        let (lo, hi) = ciao_telemetry::histogram::bucket_bounds(bucket_of(v));
        prop_assert!(lo <= v && v <= hi);
    }
}
