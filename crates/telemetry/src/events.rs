//! Bounded ring buffer of structured trace events.
//!
//! Counters answer "how many"; the ring answers "what happened, in
//! what order": epoch seals, compaction ticks, `QueueFull`
//! backpressure, plan evaluations. Capacity is fixed at construction —
//! when full, the oldest event is dropped and counted, so a
//! long-running service keeps a recent window instead of growing
//! without bound. Pushes take a short mutex (events are rare next to
//! counter increments; the hot layers never push per record).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (ring lifetime, survives drops).
    pub seq: u64,
    /// Time since the ring was created.
    pub t: Duration,
    /// Event kind, e.g. `"epoch_seal"` or `"queue_full"`.
    pub kind: &'static str,
    /// Originating shard, when the event is shard-scoped.
    pub shard: Option<usize>,
    /// Small structured payload, e.g. `[("rows", 1024)]`.
    pub fields: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct RingState {
    buf: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// The bounded event ring.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    started: Instant,
    state: Mutex<RingState>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            capacity,
            started: Instant::now(),
            state: Mutex::new(RingState::default()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, kind: &'static str, shard: Option<usize>, fields: &[(&'static str, u64)]) {
        let t = self.started.elapsed();
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.buf.len() == self.capacity {
            st.buf.pop_front();
            st.dropped += 1;
        }
        st.buf.push_back(TraceEvent {
            seq,
            t,
            kind,
            shard,
            fields: fields.to_vec(),
        });
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.state.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_when_full() {
        let ring = EventRing::new(2);
        ring.push("a", None, &[]);
        ring.push("b", Some(1), &[("x", 1)]);
        ring.push("c", None, &[]);
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "b");
        assert_eq!(events[0].fields, vec![("x", 1)]);
        assert_eq!(events[1].kind, "c");
        assert_eq!(events[1].seq, 2);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let ring = EventRing::new(8);
        ring.push("a", None, &[]);
        ring.push("b", None, &[]);
        let events = ring.snapshot();
        assert!(events[0].t <= events[1].t);
        assert!(events[0].seq < events[1].seq);
    }
}
