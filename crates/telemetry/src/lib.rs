//! # `ciao_telemetry` — lock-free metrics core
//!
//! The paper's claims are quantitative (parse-free matching beats
//! parsing, §IV; the pushdown plan pays off under a measured workload,
//! §V), so the reproduction needs more than point-in-time gauges: it
//! needs latency *distributions*, an event *history*, and exporters a
//! trajectory harness can persist. This crate is the measurement
//! substrate the service, engine, and client all record into:
//!
//! * [`Counter`] / [`Gauge`] — typed handles over plain atomics;
//!   cloning a handle shares the underlying cell, so hot paths record
//!   without any lock or registry lookup.
//! * [`Histogram`] — a log-linear-bucket latency histogram (16 linear
//!   buckets per power of two, ≤ ~6% relative bucket width) with
//!   atomic buckets, p50/p90/p99/max quantiles, and an associative,
//!   commutative [`Histogram::merge`] so per-shard histograms fold
//!   into fleet-wide ones.
//! * [`ScopedTimer`] — records the elapsed time of a scope into a
//!   histogram on drop.
//! * [`EventRing`] — a bounded ring buffer of structured
//!   [`TraceEvent`]s (epoch seals, compaction ticks, `QueueFull`
//!   backpressure, plan evaluations) with a dropped-event counter.
//! * [`SpanTree`] — a per-query tree of parent/child spans with
//!   monotonic timings and typed [`AttrValue`] attributes, exporting
//!   as Chrome `trace_event` JSON (`chrome://tracing` / Perfetto).
//! * [`Telemetry`] — a named registry tying the above together, with
//!   two exporters on its [`TelemetrySnapshot`]: Prometheus-style text
//!   exposition (HELP text via [`Telemetry::set_help`], escaped per
//!   the exposition format) and a JSON snapshot.
//!
//! The crate has **zero dependencies** (std only) and every recording
//! operation is a handful of relaxed atomic ops; pushing a trace event
//! takes a short mutex on the ring only.
//!
//! ```
//! use ciao_telemetry::Telemetry;
//! use std::time::Duration;
//!
//! let t = Telemetry::new();
//! let ingested = t.counter("ingested_chunks_total");
//! let latency = t.histogram("ingest_ack_ns");
//! ingested.inc();
//! latency.record_duration(Duration::from_micros(250));
//! t.events().push("epoch_seal", Some(0), &[("rows", 1024)]);
//!
//! let snap = t.snapshot();
//! assert!(snap.prometheus_text().contains("ingested_chunks_total 1"));
//! assert!(snap.to_json().contains("\"epoch_seal\""));
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod span;
pub mod spantree;

pub use events::{EventRing, TraceEvent};
pub use export::TelemetrySnapshot;
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Telemetry};
pub use span::ScopedTimer;
pub use spantree::{AttrValue, Span, SpanId, SpanTree};
