//! Named metric registry with typed lock-free handles.

use crate::events::EventRing;
use crate::export::TelemetrySnapshot;
use crate::histogram::Histogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates an unregistered counter (useful standalone).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates an unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (negative to subtract).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named registry of counters, gauges, histograms, and one trace
/// ring. Registration (name lookup) takes a mutex once; the returned
/// handles record lock-free, so callers cache them, not names.
#[derive(Debug)]
pub struct Telemetry {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
    help: Mutex<Vec<(String, String)>>,
    events: EventRing,
}

/// Default trace-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl Telemetry {
    /// Creates a registry with the default event-ring capacity.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Creates a registry whose trace ring holds `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            help: Mutex::new(Vec::new()),
            events: EventRing::new(capacity),
        }
    }

    /// Registers (or replaces) the HELP text exported for `name`. The
    /// Prometheus exporter escapes it per the exposition format.
    pub fn set_help(&self, name: &str, text: &str) {
        let mut entries = self.help.lock().unwrap();
        if let Some((_, slot)) = entries.iter_mut().find(|(n, _)| n == name) {
            text.clone_into(slot);
        } else {
            entries.push((name.to_owned(), text.to_owned()));
        }
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        Self::get_or_insert(&self.counters, name)
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Self::get_or_insert(&self.gauges, name)
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Self::get_or_insert(&self.histograms, name)
    }

    /// The trace-event ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    fn get_or_insert<T: Clone + Default>(slot: &Mutex<Vec<(String, T)>>, name: &str) -> T {
        let mut entries = slot.lock().unwrap();
        if let Some((_, handle)) = entries.iter().find(|(n, _)| n == name) {
            return handle.clone();
        }
        let handle = T::default();
        entries.push((name.to_owned(), handle.clone()));
        handle
    }

    /// A point-in-time copy of every registered metric and the event
    /// window, for the exporters.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            events: self.events.snapshot(),
            dropped_events: self.events.dropped(),
            help: self.help.lock().unwrap().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(t.counter("x").get(), 3);
        assert_ne!(t.counter("y").get(), 3);
    }

    #[test]
    fn gauges_go_both_ways() {
        let t = Telemetry::new();
        let g = t.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn snapshot_collects_everything() {
        let t = Telemetry::with_event_capacity(4);
        t.counter("c").inc();
        t.gauge("g").set(-2);
        t.histogram("h").record(100);
        t.events().push("boot", None, &[]);
        let snap = t.snapshot();
        assert_eq!(snap.counters, vec![("c".to_owned(), 1)]);
        assert_eq!(snap.gauges, vec![("g".to_owned(), -2)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn handles_record_across_threads() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        let c = t.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
    }
}
