//! Exporters: Prometheus-style text exposition and a JSON snapshot.
//!
//! Both render a [`TelemetrySnapshot`], so an exporter call never
//! holds registry locks while formatting. The JSON writer is
//! hand-rolled (this crate has no dependencies) and emits strict RFC
//! 8259 output — the workspace's oracle-grade `serde_json` parses it
//! in the tests.

use crate::events::TraceEvent;
use crate::histogram::{bucket_bounds, HistogramSnapshot};
use std::fmt::Write as _;

/// A point-in-time copy of a [`crate::Telemetry`] registry.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// `(name, value)` for every registered counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The retained trace-event window, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring to make room.
    pub dropped_events: u64,
    /// `(name, help text)` registered via [`crate::Telemetry::set_help`].
    pub help: Vec<(String, String)>,
}

impl TelemetrySnapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus-style text exposition. Histograms emit cumulative
    /// `_bucket{le="…"}` lines for non-empty buckets (plus `+Inf`),
    /// with `le` bounds in the histogram's recorded unit (nanoseconds
    /// for the service's latency metrics). Metrics with registered
    /// help text get a `# HELP` line, escaped per the exposition
    /// format; the ring's eviction count is always exported as
    /// `ciao_telemetry_dropped_events_total`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let help_line = |out: &mut String, name: &str| {
            if let Some((_, text)) = self.help.iter().find(|(n, _)| n == name) {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(text));
            }
        };
        for (name, value) in &self.counters {
            help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let le = escape_label_value(&bucket_bounds(i).1.to_string());
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        let _ = writeln!(
            out,
            "# HELP ciao_telemetry_dropped_events_total Trace events evicted from the bounded ring\n\
             # TYPE ciao_telemetry_dropped_events_total counter\n\
             ciao_telemetry_dropped_events_total {}",
            self.dropped_events
        );
        out
    }

    /// A compact JSON document: counters/gauges as objects, histograms
    /// as `{count, sum, max, mean, p50, p90, p99}`, events as an array
    /// of `{seq, t_s, kind, shard, fields}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.max,
                json_f64(h.mean()),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"t_s\":{},\"kind\":",
                e.seq,
                json_f64(e.t.as_secs_f64())
            );
            write_json_string(&mut out, e.kind);
            match e.shard {
                Some(s) => {
                    let _ = write!(out, ",\"shard\":{s}");
                }
                None => out.push_str(",\"shard\":null"),
            }
            out.push_str(",\"fields\":{");
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push_str("}}");
        }
        let _ = write!(out, "],\"dropped_events\":{}}}", self.dropped_events);
        out
    }
}

/// Formats a finite f64 as a JSON number (non-finite values, which the
/// snapshot math never produces from valid inputs, degrade to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_owned()
    }
}

/// Escapes HELP text per the Prometheus exposition format: `\` and
/// newline only.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the exposition format: `\`, newline,
/// and `"`.
fn escape_label_value(s: &str) -> String {
    escape_help(s).replace('"', "\\\"")
}

pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    fn populated() -> Telemetry {
        let t = Telemetry::with_event_capacity(8);
        t.counter("ingested_total").add(42);
        t.gauge("queue_depth").set(-1);
        let h = t.histogram("ack_ns");
        for v in [100, 200, 300, 400_000] {
            h.record(v);
        }
        t.events().push("queue_full", Some(2), &[("capacity", 64)]);
        t
    }

    #[test]
    fn prometheus_text_shape() {
        let text = populated().snapshot().prometheus_text();
        assert!(text.contains("# TYPE ingested_total counter"));
        assert!(text.contains("ingested_total 42"));
        assert!(text.contains("queue_depth -1"));
        assert!(text.contains("# TYPE ack_ns histogram"));
        assert!(text.contains("ack_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("ack_ns_count 4"));
        // Cumulative: the last finite bucket line carries the full count.
        let last_finite = text
            .lines()
            .rfind(|l| l.starts_with("ack_ns_bucket{le=\"") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 4"), "{last_finite}");
    }

    #[test]
    fn json_is_strictly_parseable() {
        let json = populated().snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("ingested_total")
                .unwrap()
                .as_i64(),
            Some(42)
        );
        let h = v.get("histograms").unwrap().get("ack_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_i64(), Some(4));
        assert_eq!(h.get("max").unwrap().as_i64(), Some(400_000));
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("queue_full"));
        assert_eq!(events[0].get("shard").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn prometheus_help_lines_are_escaped() {
        let t = Telemetry::new();
        t.counter("requests_total").inc();
        t.set_help("requests_total", "Total \"requests\"\nwith a \\ backslash");
        let text = t.snapshot().prometheus_text();
        // Newlines and backslashes are escaped so the HELP comment
        // stays a single exposition line; quotes pass through (only
        // label values escape them).
        assert!(
            text.contains("# HELP requests_total Total \"requests\"\\nwith a \\\\ backslash"),
            "{text}"
        );
        assert!(text.contains("# TYPE requests_total counter"));
        // A metric without help emits no HELP line.
        t.counter("bare_total").inc();
        let text = t.snapshot().prometheus_text();
        assert!(!text.contains("# HELP bare_total"));
    }

    #[test]
    fn prometheus_exports_dropped_events() {
        let t = Telemetry::with_event_capacity(2);
        for i in 0u64..5 {
            t.events().push("tick", None, &[("i", i)]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.dropped_events, 3);
        let text = snap.prometheus_text();
        assert!(text.contains("# TYPE ciao_telemetry_dropped_events_total counter"));
        assert!(text.contains("\nciao_telemetry_dropped_events_total 3\n"));
    }

    #[test]
    fn label_value_escaping_covers_exposition_specials() {
        assert_eq!(super::escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::escape_help("a\"b\\c\nd"), "a\"b\\\\c\\nd");
    }

    #[test]
    fn json_escapes_names() {
        let t = Telemetry::new();
        t.counter("weird\"name\\with\ncontrol").inc();
        let json = t.snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("escaped");
        assert!(v
            .get("counters")
            .unwrap()
            .get("weird\"name\\with\ncontrol")
            .is_some());
    }
}
