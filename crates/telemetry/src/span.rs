//! Scoped timers: measure a lexical scope into a histogram.

use crate::Histogram;
use std::time::Instant;

/// Records the wall-clock lifetime of the value into a histogram when
/// dropped. Start one at the top of a hot scope:
///
/// ```
/// use ciao_telemetry::{Histogram, ScopedTimer};
/// let ingest_ns = Histogram::new();
/// {
///     let _span = ScopedTimer::start(&ingest_ns);
///     // ... the work being measured ...
/// }
/// assert_eq!(ingest_ns.count(), 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Histogram,
    started: Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Starts timing now; the elapsed nanoseconds are recorded into
    /// `histogram` on drop.
    pub fn start(histogram: &Histogram) -> ScopedTimer {
        ScopedTimer {
            histogram: histogram.clone(),
            started: Instant::now(),
            armed: true,
        }
    }

    /// Stops the timer early, recording now instead of at drop.
    pub fn stop(mut self) {
        self.record();
    }

    /// Abandons the span without recording (e.g. the guarded operation
    /// failed and its latency would pollute the distribution).
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn record(&mut self) {
        if self.armed {
            self.armed = false;
            self.histogram.record_duration(self.started.elapsed());
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_once_on_drop() {
        let h = Histogram::new();
        {
            let _t = ScopedTimer::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_and_disarms_drop() {
        let h = Histogram::new();
        let t = ScopedTimer::start(&h);
        t.stop();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new();
        ScopedTimer::start(&h).cancel();
        assert_eq!(h.count(), 0);
    }
}
