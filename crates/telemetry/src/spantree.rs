//! Per-query span trees: parent/child timing with typed attributes.
//!
//! The registry's histograms answer "how slow is this stage on
//! average"; a [`SpanTree`] answers "where did *this* query spend its
//! time". A tree is built by one owner (no interior locking — it is
//! plain mutable state, cheap enough to record always-on), carries
//! monotonic timings relative to a single origin [`Instant`], and
//! exports as Chrome `trace_event` JSON loadable into
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! Two recording styles compose:
//!
//! * [`SpanTree::begin`] / [`SpanTree::end`] — stack-scoped spans on
//!   the owning thread (parse → plan → execute);
//! * [`SpanTree::add_complete`] — retroactive spans from offsets other
//!   threads measured against [`SpanTree::origin`] (per-shard
//!   execution recorded after the fan-out joins), each on its own
//!   `track` so concurrent shards render as parallel rows.
//!
//! ```
//! use ciao_telemetry::{AttrValue, SpanTree};
//! let mut tree = SpanTree::new("query");
//! let parse = tree.begin("parse");
//! tree.attr(parse, "bytes", 42i64);
//! tree.end(parse);
//! tree.finish();
//! assert!(tree.to_chrome_trace().contains("\"traceEvents\""));
//! ```

use std::time::Instant;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// An integer attribute.
    Int(i64),
    /// A float attribute.
    Float(f64),
    /// A boolean attribute.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

/// Handle to a span inside one [`SpanTree`]. Only meaningful for the
/// tree that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One recorded span: a named interval with a parent link and typed
/// attributes. Timings are nanosecond offsets from the tree's origin.
#[derive(Debug, Clone)]
pub struct Span {
    name: String,
    parent: Option<usize>,
    track: u64,
    start_ns: u64,
    dur_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Index of the parent span within [`SpanTree::spans`], if any.
    pub fn parent(&self) -> Option<usize> {
        self.parent
    }

    /// Start offset from the tree origin, nanoseconds.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Duration in nanoseconds (0 until the span is ended).
    pub fn dur_ns(&self) -> u64 {
        self.dur_ns
    }

    /// The rendering track (Chrome `tid`); concurrent shard spans use
    /// distinct tracks so they draw as parallel rows.
    pub fn track(&self) -> u64 {
        self.track
    }

    /// The span's attributes, in recording order.
    pub fn attrs(&self) -> &[(&'static str, AttrValue)] {
        &self.attrs
    }
}

/// A tree of timed spans for a single operation (typically one query).
#[derive(Debug, Clone)]
pub struct SpanTree {
    origin: Instant,
    spans: Vec<Span>,
    stack: Vec<usize>,
}

impl SpanTree {
    /// Starts a tree whose root span opens now.
    pub fn new(root: &str) -> SpanTree {
        let mut tree = SpanTree {
            origin: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
        };
        let id = tree.push_span(root, None, 0, 0);
        tree.stack.push(id.0);
        tree
    }

    /// The instant all span offsets are measured from. Copy this into
    /// worker threads to time work for [`SpanTree::add_complete`].
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Nanoseconds elapsed since the tree's origin.
    pub fn elapsed_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Opens a child of the innermost open span, starting now.
    pub fn begin(&mut self, name: &str) -> SpanId {
        let parent = self.stack.last().copied();
        let start = self.elapsed_ns();
        let id = self.push_span(name, parent, 0, start);
        self.stack.push(id.0);
        id
    }

    /// Closes a span opened by [`SpanTree::begin`], setting its
    /// duration. Any still-open spans nested inside it close too.
    pub fn end(&mut self, id: SpanId) {
        let now = self.elapsed_ns();
        while let Some(&top) = self.stack.last() {
            self.stack.pop();
            self.spans[top].dur_ns = now.saturating_sub(self.spans[top].start_ns);
            if top == id.0 {
                return;
            }
        }
        // `id` was not on the stack (already ended): just refresh it.
        self.spans[id.0].dur_ns = now.saturating_sub(self.spans[id.0].start_ns);
    }

    /// Closes every span still open, the root last.
    pub fn finish(&mut self) {
        let now = self.elapsed_ns();
        while let Some(top) = self.stack.pop() {
            self.spans[top].dur_ns = now.saturating_sub(self.spans[top].start_ns);
        }
    }

    /// Records an already-measured interval as a child of `parent`
    /// (the root when `None`). `track` picks the rendering row —
    /// concurrent shards should use distinct non-zero tracks.
    pub fn add_complete(
        &mut self,
        parent: Option<SpanId>,
        name: &str,
        track: u64,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanId {
        let parent = parent
            .map(|p| p.0)
            .or(if self.spans.is_empty() { None } else { Some(0) });
        let id = self.push_span(name, parent, track, start_ns);
        self.spans[id.0].dur_ns = dur_ns;
        id
    }

    /// Attaches a typed attribute to a span.
    pub fn attr(&mut self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        self.spans[id.0].attrs.push((key, value.into()));
    }

    /// All spans in creation order; index 0 is the root.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root span's id.
    pub fn root(&self) -> SpanId {
        SpanId(0)
    }

    fn push_span(
        &mut self,
        name: &str,
        parent: Option<usize>,
        track: u64,
        start_ns: u64,
    ) -> SpanId {
        self.spans.push(Span {
            name: name.to_owned(),
            parent,
            track,
            start_ns,
            dur_ns: 0,
            attrs: Vec::new(),
        });
        SpanId(self.spans.len() - 1)
    }

    /// Exports the tree as Chrome `trace_event` JSON (an object with a
    /// `traceEvents` array of complete `ph:"X"` events, timestamps in
    /// microseconds). Load the file via `chrome://tracing` or
    /// Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            crate::export::write_json_string(&mut out, &span.name);
            let ts = span.start_ns as f64 / 1e3;
            let dur = span.dur_ns as f64 / 1e3;
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    ",\"cat\":\"ciao\",\"ph\":\"X\",\"ts\":{ts:?},\"dur\":{dur:?},\"pid\":1,\"tid\":{}",
                    span.track + 1
                ),
            );
            out.push_str(",\"args\":{");
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                crate::export::write_json_string(&mut out, key);
                out.push(':');
                match value {
                    AttrValue::Str(s) => crate::export::write_json_string(&mut out, s),
                    AttrValue::Int(v) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                    }
                    AttrValue::Float(v) => {
                        let rendered = if v.is_finite() {
                            format!("{v:?}")
                        } else {
                            "0".to_owned()
                        };
                        out.push_str(&rendered);
                    }
                    AttrValue::Bool(v) => {
                        out.push_str(if *v { "true" } else { "false" });
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_durations() {
        let mut tree = SpanTree::new("query");
        let parse = tree.begin("parse");
        tree.end(parse);
        let exec = tree.begin("execute");
        let inner = tree.begin("shard0");
        tree.end(inner);
        tree.end(exec);
        tree.finish();

        let spans = tree.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name(), "query");
        assert_eq!(spans[0].parent(), None);
        assert_eq!(spans[1].parent(), Some(0));
        assert_eq!(spans[2].parent(), Some(0));
        assert_eq!(spans[3].parent(), Some(2));
        // Monotonic: children start no earlier than their parent and
        // the root covers everything it contains.
        for s in &spans[1..] {
            let p = &spans[s.parent().unwrap()];
            assert!(s.start_ns() >= p.start_ns());
        }
        assert!(spans[0].dur_ns() >= spans[2].dur_ns());
        assert!(spans[2].dur_ns() >= spans[3].dur_ns());
    }

    #[test]
    fn end_closes_dangling_children() {
        let mut tree = SpanTree::new("root");
        let outer = tree.begin("outer");
        let _inner = tree.begin("inner"); // never ended explicitly
        tree.end(outer);
        // Only the root remains open.
        let next = tree.begin("after");
        assert_eq!(tree.spans()[next.0].parent(), Some(0));
    }

    #[test]
    fn add_complete_records_foreign_timings() {
        let mut tree = SpanTree::new("query");
        let exec = tree.begin("execute");
        let shard = tree.add_complete(Some(exec), "shard1", 2, 500, 1_000);
        tree.attr(shard, "blocks_pruned", 7u64);
        tree.end(exec);
        tree.finish();
        let s = &tree.spans()[shard.0];
        assert_eq!(s.start_ns(), 500);
        assert_eq!(s.dur_ns(), 1_000);
        assert_eq!(s.track(), 2);
        assert_eq!(s.attrs()[0], ("blocks_pruned", AttrValue::Int(7)));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let mut tree = SpanTree::new("query");
        let parse = tree.begin("parse");
        tree.attr(parse, "sql", "SELECT \"x\"\nFROM t");
        tree.attr(parse, "ok", true);
        tree.attr(parse, "ratio", 0.5f64);
        tree.end(parse);
        tree.finish();

        let json = tree.to_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("query"));
        assert_eq!(events[1].get("pid").unwrap().as_i64(), Some(1));
        let args = events[1].get("args").unwrap();
        assert_eq!(
            args.get("sql").unwrap().as_str(),
            Some("SELECT \"x\"\nFROM t")
        );
        assert_eq!(args.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(args.get("ratio").unwrap().as_f64(), Some(0.5));
        // Every event's ts/dur is microseconds ≥ 0.
        for e in events {
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        }
    }
}
