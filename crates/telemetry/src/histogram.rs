//! Log-linear-bucket latency histograms.
//!
//! Values (typically nanoseconds) land in one of [`BUCKETS`] buckets:
//! the first [`LINEAR`] buckets hold one value each, and every power
//! of two above that is split into [`SUBBUCKETS`] equal-width
//! subbuckets, so a bucket's width is at most 1/16 of its magnitude
//! (≤ ~6% relative error on any reported quantile). The layout is a
//! compile-time constant, which is what makes [`Histogram::merge`]
//! associative and commutative: merging is element-wise addition.
//!
//! Recording is a relaxed atomic increment on one bucket plus three
//! bookkeeping atomics — no locks, safe from any thread through a
//! cheaply cloneable handle.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Exact one-value buckets below the first split power of two.
pub const LINEAR: usize = 16;
/// Subbuckets per power of two above the linear range.
pub const SUBBUCKETS: usize = 16;
/// Total bucket count (fixed layout; merges require identical layouts).
pub const BUCKETS: usize = LINEAR + (64 - SUBBUCKETS.trailing_zeros() as usize) * SUBBUCKETS;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < LINEAR as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as usize; // >= 4
    let sub = ((value >> (msb - 4)) & (SUBBUCKETS as u64 - 1)) as usize;
    LINEAR + (msb - 4) * SUBBUCKETS + sub
}

/// The inclusive `[lo, hi]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index < LINEAR {
        return (index as u64, index as u64);
    }
    let group = (index - LINEAR) / SUBBUCKETS;
    let sub = (index - LINEAR) % SUBBUCKETS;
    let lo = ((LINEAR + sub) as u64) << group;
    let width = 1u64 << group;
    (lo, lo.saturating_add(width - 1))
}

#[derive(Debug)]
struct Core {
    buckets: Vec<AtomicU64>, // length BUCKETS
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Core {
    fn new() -> Core {
        Core {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A shareable handle to one histogram. `Clone` shares the underlying
/// buckets (like a metrics-library handle); use
/// [`Histogram::detached_copy`] for a value-semantics duplicate.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Core {
    fn default() -> Core {
        Core::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        let c = &self.core;
        c.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// Mean recorded value. 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The quantile estimate for `q` in `[0, 1]`: the upper bound of
    /// the bucket holding the value of exact rank `ceil(q·n)`, clamped
    /// to the observed maximum (so `quantile(1.0) == max()` exactly,
    /// and every estimate is within one bucket of the exact rank
    /// value). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every bucket of `other` into this histogram. Element-wise
    /// atomic addition over the shared fixed layout, so merging is
    /// associative and commutative and never loses counts; merging
    /// while writers are recording yields some valid interleaving.
    pub fn merge(&self, other: &Histogram) {
        let (a, b) = (&self.core, &other.core);
        for (dst, src) in a.buckets.iter().zip(&b.buckets) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        a.count
            .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
        a.sum
            .fetch_add(b.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        a.max
            .fetch_max(b.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A value-semantics duplicate: a fresh histogram holding a copy
    /// of the current counts, sharing nothing with `self`.
    pub fn detached_copy(&self) -> Histogram {
        let copy = Histogram::new();
        copy.merge(self);
        copy
    }

    /// A consistent-enough point-in-time copy of the counts (bucket
    /// loads are not atomic as a group; totals may trail the buckets
    /// by in-flight recordings).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        HistogramSnapshot {
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// Plain-data copy of a histogram's counts, used by the exporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, length [`BUCKETS`].
    pub buckets: Vec<u64>,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Quantile estimate over the snapshot; see [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean recorded value. 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket upper bounds are strictly increasing.
        let mut prev_hi = None;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_hi = (hi != u64::MAX).then_some(hi);
        }
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            63,
            64,
            1000,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), LINEAR as u64);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_track_ranks() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50's exact rank value is 500; estimate must land in 500's bucket.
        assert_eq!(bucket_of(h.p50()), bucket_of(500));
        assert_eq!(bucket_of(h.p99()), bucket_of(990));
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_and_detached_copy_shares_nothing() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);

        let frozen = a.detached_copy();
        a.record(5);
        assert_eq!(frozen.count(), 2, "detached copy must not see new records");
        // Handle clones DO share.
        let alias = a.clone();
        alias.record(7);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn duration_saturates() {
        let h = Histogram::new();
        h.record_duration(Duration::MAX);
        assert_eq!(h.max(), u64::MAX);
    }
}
