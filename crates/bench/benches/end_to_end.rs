//! End-to-end pipeline benchmark: the statistical backend of
//! Figs. 3–5 (the `repro` binary prints the paper-shaped rows; this
//! gives criterion-grade timing for selected budget points).

use ciao::{CiaoConfig, Pipeline};
use ciao_datagen::Dataset;
use ciao_workload::{build_pool, WorkloadConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const RECORDS: usize = 8_000;
const QUERIES: usize = 20;

fn bench_end_to_end(c: &mut Criterion) {
    let data = Dataset::WinLog.generate_ndjson(9, RECORDS);
    let pool = build_pool(Dataset::WinLog);
    let mut cfg = WorkloadConfig::workload_a(Dataset::WinLog, 13);
    cfg.queries = QUERIES;
    let queries = cfg.generate(&pool);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDS as u64));
    for budget in [0.0, 1.0, 5.0] {
        group.bench_with_input(
            BenchmarkId::new("winlog_workload_a", format!("budget_{budget}")),
            &budget,
            |b, &budget| {
                let pipeline = Pipeline::new(
                    CiaoConfig::default()
                        .with_budget_micros(budget)
                        .with_sample_size(1000),
                );
                b.iter(|| {
                    pipeline
                        .run(black_box(&data), black_box(&queries))
                        .expect("run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
