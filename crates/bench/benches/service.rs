//! Sharded-service ingest benchmark: the same prefiltered chunk
//! stream pushed through 1/2/4/8 shards (workers = shards), versus the
//! single-threaded `Server` baseline. Measures the server side only —
//! client prefiltering is pre-paid when the environment is built.
//!
//! The binary also measures the telemetry tax directly: identical
//! ingest runs with instrumentation on and off, medians compared, and
//! the overhead percentage appended to `BENCH_service.json` (see
//! `ciao_bench::trajectory`). The same comparison runs on the query
//! path, where telemetry-on now includes the whole profiler (span
//! tree, workload EWMAs, slow-query log). The acceptance budget is 5%
//! for both.

use ciao_bench::experiments::service::ServiceEnv;
use ciao_bench::experiments::sql;
use ciao_bench::{trajectory, ExperimentScale};
use ciao_service::Service;
use criterion::{black_box, criterion_group, BenchmarkId, Criterion, Throughput};
use std::time::Instant;

fn bench_service_ingest(c: &mut Criterion) {
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);

    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(env.records() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("ycsb", format!("shards_{shards}")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let service = env.run_service_ingest(black_box(shards));
                    black_box(service.metrics().rows());
                    service.shutdown()
                })
            },
        );
    }
    group.finish();
}

fn bench_baseline_server(c: &mut Criterion) {
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);

    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(env.records() as u64));
    group.bench_function("ycsb/single_thread_server", |b| {
        b.iter(|| {
            let mut server = env.baseline_server();
            server.finalize();
            black_box(server.table().row_count())
        })
    });
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(env.records() as u64));
    for (name, telemetry) in [("instrumented", true), ("uninstrumented", false)] {
        group.bench_function(format!("ycsb/2_shards_{name}"), |b| {
            b.iter(|| {
                let service = env.run_service_ingest_with(black_box(2), telemetry);
                black_box(service.metrics().rows());
                service.shutdown()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_service_ingest,
    bench_baseline_server,
    bench_telemetry_overhead
);

/// The vendored Criterion prints medians but does not expose them, so
/// the trajectory measurement re-times both settings by hand. The
/// instrumented and uninstrumented runs are **interleaved** so
/// machine-load drift lands on both sides equally instead of biasing
/// whichever block ran second; medians then shrug off the outliers.
fn interleaved_medians(env: &ServiceEnv, iters: usize) -> (f64, f64) {
    let time_one = |telemetry: bool| {
        let start = Instant::now();
        let service = env.run_service_ingest_with(2, telemetry);
        black_box(service.metrics().rows());
        service.shutdown();
        start.elapsed().as_secs_f64()
    };
    time_one(true); // warm-up, discarded
    let mut on_samples = Vec::with_capacity(iters);
    let mut off_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        on_samples.push(time_one(true));
        off_samples.push(time_one(false));
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    (median(&mut on_samples), median(&mut off_samples))
}

fn append_overhead_run() {
    const ITERS: usize = 15;
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);
    let (on, off) = interleaved_medians(&env, ITERS);
    let overhead_pct = (on - off) / off * 100.0;
    println!(
        "telemetry overhead: median ingest {on:.4}s instrumented vs {off:.4}s uninstrumented \
         ({overhead_pct:+.2}%)"
    );

    let path = trajectory::output_path();
    let run = trajectory::run_from_rows("bench", env.records(), Some(overhead_pct), &[]);
    match trajectory::append_run(&path, run) {
        Ok(doc) => println!(
            "trajectory: appended run #{} to {}",
            doc.runs.len(),
            path.display()
        ),
        Err(e) => eprintln!("trajectory: could not write {}: {e}", path.display()),
    }
}

/// The profiler's query-path tax, measured the same way: one
/// instrumented and one uninstrumented 2-shard service over the same
/// ingested data, the SQL battery replayed on each in interleaved
/// rounds. Telemetry-on runs the full profiler per statement — span
/// tree, per-clause workload EWMAs, slow-query log — telemetry-off
/// skips it all, so the median gap is the profiling overhead.
fn profiling_overhead_medians(env: &ServiceEnv, iters: usize) -> (f64, f64) {
    let on = env.run_service_ingest_with(2, true);
    let off = env.run_service_ingest_with(2, false);
    let battery = sql::statements();
    let time_battery = |service: &Service| {
        let start = Instant::now();
        for stmt in &battery {
            black_box(
                service
                    .query_sql(stmt)
                    .expect("battery executes")
                    .rows
                    .len(),
            );
        }
        start.elapsed().as_secs_f64()
    };
    time_battery(&on); // warm-up, discarded
    let mut on_samples = Vec::with_capacity(iters);
    let mut off_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        on_samples.push(time_battery(&on));
        off_samples.push(time_battery(&off));
    }
    on.shutdown();
    off.shutdown();
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    (median(&mut on_samples), median(&mut off_samples))
}

fn append_profiling_overhead_run() {
    const ITERS: usize = 15;
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);
    let (on, off) = profiling_overhead_medians(&env, ITERS);
    let overhead_pct = (on - off) / off * 100.0;
    println!(
        "profiling overhead: median SQL battery {on:.4}s instrumented vs {off:.4}s \
         uninstrumented ({overhead_pct:+.2}%)"
    );

    let path = trajectory::output_path();
    let run = trajectory::run_from_rows("bench-profiling", env.records(), Some(overhead_pct), &[]);
    match trajectory::append_run(&path, run) {
        Ok(doc) => println!(
            "trajectory: appended run #{} to {}",
            doc.runs.len(),
            path.display()
        ),
        Err(e) => eprintln!("trajectory: could not write {}: {e}", path.display()),
    }
}

fn main() {
    benches();
    append_overhead_run();
    append_profiling_overhead_run();
}
