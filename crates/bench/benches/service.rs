//! Sharded-service ingest benchmark: the same prefiltered chunk
//! stream pushed through 1/2/4/8 shards (workers = shards), versus the
//! single-threaded `Server` baseline. Measures the server side only —
//! client prefiltering is pre-paid when the environment is built.

use ciao_bench::experiments::service::ServiceEnv;
use ciao_bench::ExperimentScale;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_service_ingest(c: &mut Criterion) {
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);

    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(env.records() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("ycsb", format!("shards_{shards}")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let service = env.run_service_ingest(black_box(shards));
                    black_box(service.metrics().rows());
                    service.shutdown()
                })
            },
        );
    }
    group.finish();
}

fn bench_baseline_server(c: &mut Criterion) {
    let scale = ExperimentScale::tiny();
    let env = ServiceEnv::new(scale);

    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(env.records() as u64));
    group.bench_function("ycsb/single_thread_server", |b| {
        b.iter(|| {
            let mut server = env.baseline_server();
            server.finalize();
            black_box(server.table().row_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_service_ingest, bench_baseline_server);
criterion_main!(benches);
