//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Admission policy** — the paper §VI-A prose rule (OR over all
//!    pushed predicates) vs the per-query coverage rule the evaluation
//!    implies, measured as full ingest runs.
//! 2. **Zone maps** — block pruning on top of bitvector skipping.
//! 3. **Parallel prefilter** — worker scaling on one chunk stream.

use ciao::{AdmissionPolicy, Loader, PushdownPlan};
use ciao_client::{ClientStats, ParallelPrefilter, Prefilter};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_engine::{scan_count, ScanOptions};
use ciao_json::RecordChunk;
use ciao_optimizer::CostModel;
use ciao_predicate::parse_query;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const RECORDS: usize = 10_000;

struct Env {
    chunks: Vec<RecordChunk>,
    plan: PushdownPlan,
    schema: Arc<Schema>,
}

fn env() -> Env {
    let ndjson = Dataset::WinLog.generate_ndjson(21, RECORDS);
    let all = RecordChunk::from_ndjson(&ndjson);
    let sample: Vec<_> = all
        .iter()
        .take(1500)
        .filter_map(|r| ciao_json::parse(r).ok())
        .collect();
    let queries = vec![
        parse_query("q0", r#"level = "Error" AND service = "CBS""#).unwrap(),
        parse_query("q1", r#"level = "Critical""#).unwrap(),
    ];
    let plan = PushdownPlan::build(&queries, &sample, &CostModel::default_uncalibrated(), 50.0)
        .expect("plan");
    let schema = Arc::new(Schema::infer(&sample).expect("schema"));
    Env {
        chunks: all.split(1024),
        plan,
        schema,
    }
}

fn bench_admission_policies(c: &mut Criterion) {
    let env = env();
    let prefilter = env.plan.prefilter();
    let filters: Vec<_> = env
        .chunks
        .iter()
        .map(|ch| prefilter.run_chunk(ch))
        .collect();

    let mut group = c.benchmark_group("ablation_admission");
    group.sample_size(20);
    group.throughput(Throughput::Elements(RECORDS as u64));
    let policies = [
        ("load_all", AdmissionPolicy::LoadAll),
        ("any_predicate_or", AdmissionPolicy::AnyPredicate),
        (
            "per_query_coverage",
            AdmissionPolicy::from_coverage(&env.plan.query_coverage),
        ),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter(|| {
                let mut loader = Loader::new(
                    Arc::clone(&env.schema),
                    &env.plan.ids(),
                    policy.clone(),
                    1024,
                );
                for (chunk, filter) in env.chunks.iter().zip(&filters) {
                    loader.load_chunk(chunk, filter);
                }
                let (table, parked, stats) = loader.finish();
                black_box((table.row_count(), parked.len(), stats))
            })
        });
    }
    group.finish();
}

fn bench_zone_maps(c: &mut Criterion) {
    let env = env();
    // Load everything so the scan side is isolated.
    let prefilter = env.plan.prefilter();
    let mut loader = Loader::new(
        Arc::clone(&env.schema),
        &env.plan.ids(),
        AdmissionPolicy::LoadAll,
        512,
    );
    for chunk in &env.chunks {
        let filter = prefilter.run_chunk(chunk);
        loader.load_chunk(chunk, &filter);
    }
    let (table, _, _) = loader.finish();
    let query = parse_query("q", "pid = 7 AND pid < 8").unwrap();

    let mut group = c.benchmark_group("ablation_zone_maps");
    group.throughput(Throughput::Elements(table.row_count() as u64));
    group.bench_function("scan_plain", |b| {
        b.iter(|| scan_count(black_box(&table), &query, &ScanOptions::full()))
    });
    group.bench_function("scan_zone_mapped", |b| {
        b.iter(|| {
            scan_count(
                black_box(&table),
                &query,
                &ScanOptions::full().with_zone_maps(),
            )
        })
    });
    group.finish();
}

fn bench_parallel_prefilter(c: &mut Criterion) {
    let env = env();
    let mut group = c.benchmark_group("ablation_parallel_prefilter");
    group.sample_size(20);
    group.throughput(Throughput::Elements(RECORDS as u64));
    for workers in [1usize, 2, 4, 8] {
        let par = ParallelPrefilter::new(
            Prefilter::new(
                env.plan
                    .predicates
                    .iter()
                    .map(|p| (p.id, p.pattern.clone())),
            ),
            workers,
        );
        group.bench_with_input(BenchmarkId::from_parameter(workers), &par, |b, par| {
            b.iter(|| {
                let mut stats = ClientStats::default();
                par.run_chunks(black_box(&env.chunks), &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_admission_policies,
    bench_zone_maps,
    bench_parallel_prefilter
);
criterion_main!(benches);
