//! Columnar substrate benchmarks: the load-vs-scan asymmetry that
//! makes partial loading worthwhile, plus skip-scan vs full-scan.

use ciao_columnar::{read_table, write_table, Schema, Table, TableBuilder};
use ciao_datagen::Dataset;
use ciao_engine::{scan_count, ScanOptions};
use ciao_json::JsonValue;
use ciao_predicate::parse_query;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::collections::BTreeMap;
use std::sync::Arc;

const ROWS: usize = 20_000;

fn records() -> Vec<JsonValue> {
    Dataset::WinLog.generate(4, ROWS)
}

fn build_table(records: &[JsonValue]) -> Table {
    let schema = Arc::new(Schema::infer(records).expect("schema"));
    let mut tb = TableBuilder::with_block_size(schema, &[0], 1024);
    for (i, r) in records.iter().enumerate() {
        // Predicate 0 bits: level = "Error" (exact, for skip scans).
        let is_error = r.get("level").and_then(JsonValue::as_str) == Some("Error");
        let _ = i;
        tb.push_record(r, &BTreeMap::from([(0, is_error)]));
    }
    tb.finish()
}

fn bench_columnar(c: &mut Criterion) {
    let recs = records();
    let mut group = c.benchmark_group("columnar");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_function("load_from_parsed", |b| {
        b.iter(|| build_table(black_box(&recs)))
    });

    let table = build_table(&recs);
    let query = parse_query("q", r#"level = "Error""#).unwrap();

    group.bench_function("scan_full", |b| {
        b.iter(|| scan_count(black_box(&table), &query, &ScanOptions::full()))
    });
    group.bench_function("scan_with_skipping", |b| {
        b.iter(|| scan_count(black_box(&table), &query, &ScanOptions::skipping(vec![0])))
    });

    let ndjson: String = recs
        .iter()
        .map(|r| {
            let mut s = ciao_json::to_string(r);
            s.push('\n');
            s
        })
        .collect();
    group.bench_function("scan_raw_jit_parse", |b| {
        let lines: Vec<String> = ndjson.lines().map(str::to_owned).collect();
        b.iter(|| ciao_engine::scan_raw_records(black_box(&lines), &query))
    });

    let bytes = write_table(&table);
    group.bench_function("serialize", |b| b.iter(|| write_table(black_box(&table))));
    group.bench_function("deserialize", |b| {
        b.iter(|| read_table(black_box(&bytes)).expect("roundtrip"))
    });

    group.finish();
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
