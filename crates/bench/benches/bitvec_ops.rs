//! Bitvector kernels: the data-skipping hot path (AND of per-predicate
//! bitvectors + iteration of surviving rows).

use ciao_bitvec::BitVec;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_bitvec(c: &mut Criterion) {
    const BITS: usize = 1 << 20;
    let sparse = BitVec::from_fn(BITS, |i| i % 97 == 0);
    let dense = BitVec::from_fn(BITS, |i| i % 3 != 0);

    let mut group = c.benchmark_group("bitvec");
    group.throughput(Throughput::Elements(BITS as u64));

    group.bench_function("and", |b| {
        b.iter(|| black_box(&sparse).and(black_box(&dense)))
    });
    group.bench_function("or", |b| {
        b.iter(|| black_box(&sparse).or(black_box(&dense)))
    });
    group.bench_function("count_ones_sparse", |b| {
        b.iter(|| black_box(&sparse).count_ones())
    });
    group.bench_function("intersection_count", |b| {
        b.iter(|| black_box(&sparse).intersection_count(black_box(&dense)))
    });
    group.bench_function("iter_ones_sparse", |b| {
        b.iter(|| black_box(&sparse).iter_ones().sum::<usize>())
    });
    group.bench_function("iter_ones_dense", |b| {
        b.iter(|| black_box(&dense).iter_ones().sum::<usize>())
    });
    for n in [3usize, 8] {
        let vecs: Vec<BitVec> = (0..n)
            .map(|k| BitVec::from_fn(BITS, |i| (i + k) % (5 + k) != 0))
            .collect();
        group.bench_with_input(BenchmarkId::new("intersect_all", n), &vecs, |b, vecs| {
            b.iter(|| {
                let refs: Vec<&BitVec> = vecs.iter().collect();
                BitVec::intersect_all(&refs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitvec);
criterion_main!(benches);
