//! Substring-search kernel benchmarks: the client's single primitive.
//!
//! Compares the precompiled [`ciao_client::Finder`] against std's
//! `str::find` on record/pattern shapes representative of the three
//! datasets (short keys, medium keywords, long messages; hit and miss
//! cases — the cost model's two branches).

use ciao_client::Finder;
use ciao_datagen::Dataset;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_search(c: &mut Criterion) {
    let records: Vec<String> = Dataset::WinLog
        .generate_ndjson(1, 2000)
        .lines()
        .map(str::to_owned)
        .collect();
    let total_bytes: usize = records.iter().map(String::len).sum();

    let cases = [
        ("hit_short", "\"level\""), // key present in every record
        ("hit_rare", "kw000"),      // common keyword
        ("miss_short", "\"zzz\""),
        ("miss_long", "this needle never appears anywhere"),
    ];

    let mut group = c.benchmark_group("search");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    for (name, needle) in cases {
        let finder = Finder::new(needle);
        group.bench_with_input(BenchmarkId::new("finder", name), &finder, |b, finder| {
            b.iter(|| {
                let mut hits = 0usize;
                for r in &records {
                    if finder.is_match(black_box(r.as_bytes())) {
                        hits += 1;
                    }
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("std_find", name), &needle, |b, needle| {
            b.iter(|| {
                let mut hits = 0usize;
                for r in &records {
                    if black_box(r.as_str()).contains(needle) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
