//! Optimizer benchmarks and the algorithm ablation called out in
//! DESIGN.md: Algorithm 1 vs Algorithm 2 vs max-of-both vs the
//! exhaustive oracle (small n), plus greedy scaling with pool size.

use ciao_optimizer::{
    greedy_benefit, greedy_ratio, solve, solve_exhaustive, solve_partial_enum, Candidate, Instance,
    QueryRef,
};
use ciao_predicate::{Clause, SimplePredicate};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Deterministic pseudo-random instance with `n` candidates and `n/2`
/// queries of ~3 clauses each.
fn instance(n: usize, budget: f64) -> Instance {
    let mix = |i: usize, salt: usize| ((i + 1) * 2654435761 + salt * 40503) % 1000;
    let candidates = (0..n)
        .map(|i| Candidate {
            clause: Clause::single(SimplePredicate::IntEq {
                key: format!("k{i}"),
                value: i as i64,
            }),
            selectivity: 0.05 + 0.9 * mix(i, 1) as f64 / 1000.0,
            cost: 0.1 + 2.0 * mix(i, 2) as f64 / 1000.0,
        })
        .collect();
    let queries = (0..n / 2)
        .map(|q| QueryRef {
            name: format!("q{q}"),
            freq: 1.0,
            candidates: (0..3).map(|j| mix(q, 3 + j) % n).collect(),
        })
        .collect();
    Instance {
        candidates,
        queries,
        budget,
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_scaling");
    for n in [50usize, 100, 200, 400] {
        let inst = instance(n, 10.0);
        group.bench_with_input(BenchmarkId::new("solve", n), &inst, |b, inst| {
            b.iter(|| solve(black_box(inst)))
        });
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_ablation");
    let inst = instance(18, 5.0);
    group.bench_function("alg1_benefit_greedy", |b| {
        b.iter(|| greedy_benefit(black_box(&inst)))
    });
    group.bench_function("alg2_ratio_greedy", |b| {
        b.iter(|| greedy_ratio(black_box(&inst)))
    });
    group.bench_function("max_of_both", |b| b.iter(|| solve(black_box(&inst))));
    group.bench_function("partial_enum_seed2", |b| {
        b.iter(|| solve_partial_enum(black_box(&inst), 2))
    });
    group.bench_function("exhaustive_oracle_n18", |b| {
        b.iter(|| solve_exhaustive(black_box(&inst)))
    });
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_ablation);
criterion_main!(benches);
