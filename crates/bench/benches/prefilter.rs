//! Client prefilter throughput vs number of pushed predicates — the
//! quantity the budget knob controls (more predicates = more client
//! microseconds per record).

use ciao_client::Prefilter;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_predicate::{compile_clause, Clause, SimplePredicate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_prefilter(c: &mut Criterion) {
    let chunk = RecordChunk::from_ndjson(&Dataset::WinLog.generate_ndjson(2, 1024));
    let keywords = ciao_datagen::text::keyword_pool(16);

    let mut group = c.benchmark_group("prefilter");
    group.throughput(Throughput::Elements(chunk.len() as u64));
    for n in [1usize, 2, 4, 8, 16] {
        let prefilter = Prefilter::new((0..n).map(|i| {
            let clause = Clause::single(SimplePredicate::StrContains {
                key: "info".into(),
                needle: keywords[i].clone(),
            });
            (i as u32, compile_clause(&clause).expect("pushable"))
        }));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &prefilter,
            |b, prefilter| b.iter(|| prefilter.run_chunk(&chunk)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prefilter);
criterion_main!(benches);
