//! The cost asymmetry that motivates CIAO (paper §I, §IV): full JSON
//! parsing vs raw substring matching per record. Partial loading pays
//! the left column only for admitted records; clients pay only the
//! right column.

use ciao_client::raw_eval::CompiledClause;
use ciao_datagen::Dataset;
use ciao_predicate::{compile_clause, parse_clause};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_parse_vs_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_vs_match");
    for ds in Dataset::all() {
        let records: Vec<String> = ds
            .generate_ndjson(3, 1000)
            .lines()
            .map(str::to_owned)
            .collect();
        let bytes: usize = records.iter().map(String::len).sum();
        group.throughput(Throughput::Bytes(bytes as u64));

        group.bench_with_input(
            BenchmarkId::new("full_parse", ds.name()),
            &records,
            |b, records| {
                b.iter(|| {
                    let mut fields = 0usize;
                    for r in records {
                        let v = ciao_json::parse(black_box(r)).expect("valid");
                        fields += v.as_object().map_or(0, <[_]>::len);
                    }
                    fields
                })
            },
        );

        let clause = compile_clause(&parse_clause(r#"anyfield LIKE "%kw007%""#).unwrap()).unwrap();
        let compiled = CompiledClause::new(&clause);
        group.bench_with_input(
            BenchmarkId::new("raw_match", ds.name()),
            &records,
            |b, records| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for r in records {
                        if compiled.is_match(black_box(r.as_bytes())) {
                            hits += 1;
                        }
                    }
                    hits
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parse_vs_match);
criterion_main!(benches);
