//! Hot-path kernel benches: Criterion timings for the optimized
//! kernels, plus the interleaved-median suite from
//! `ciao_bench::experiments::hotpath` appended to `BENCH_hotpath.json`
//! (source `"bench"`), so local Criterion runs feed the same
//! trajectory the CI perf gate reads.

use ciao_bench::experiments::hotpath::{self, HotpathEnv};
use ciao_bench::{trajectory, ExperimentScale};
use ciao_bitvec::BitVec;
use ciao_client::Finder;
use criterion::{black_box, criterion_group, Criterion, Throughput};

fn bench_search(c: &mut Criterion) {
    let env = HotpathEnv::new(ExperimentScale::tiny());
    let hay = env.text().as_bytes();
    let finder = Finder::new("error");
    let mut group = c.benchmark_group("hotpath_search");
    group.throughput(Throughput::Bytes(hay.len() as u64));
    group.bench_function("swar", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let mut at = 0;
            while let Some(hit) = finder.find_from(black_box(hay), at) {
                n += 1;
                at = hit + 1;
            }
            n
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let mut at = 0;
            while let Some(hit) = finder.find_from_scalar(black_box(hay), at) {
                n += 1;
                at = hit + 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_patternset(c: &mut Criterion) {
    let env = HotpathEnv::new(ExperimentScale::tiny());
    let mut group = c.benchmark_group("hotpath_patternset");
    group.throughput(Throughput::Bytes(env.chunk().payload_bytes() as u64));
    for preds in [4usize, 8, 16] {
        let pf = env.prefilter(preds);
        group.bench_function(format!("one_pass_preds{preds}"), |b| {
            b.iter(|| {
                black_box(&pf)
                    .run_chunk(env.chunk())
                    .bitvecs
                    .iter()
                    .map(BitVec::count_ones)
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("per_needle_preds{preds}"), |b| {
            b.iter(|| {
                black_box(&pf)
                    .run_chunk_scalar(env.chunk())
                    .bitvecs
                    .iter()
                    .map(BitVec::count_ones)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_bitvec_fused(c: &mut Criterion) {
    const BITS: usize = 1 << 21;
    let vecs: Vec<BitVec> = (0..8)
        .map(|k| BitVec::from_fn(BITS, |i| (i + k) % (k + 2) != 0))
        .collect();
    let refs: Vec<&BitVec> = vecs.iter().collect();
    let mut group = c.benchmark_group("hotpath_bitvec");
    group.throughput(Throughput::Bytes((BITS / 8 * 8) as u64));
    group.bench_function("and_all8_fused", |b| {
        b.iter(|| BitVec::and_all(black_box(&refs)).unwrap().count_ones())
    });
    group.bench_function("and_all8_fold", |b| {
        b.iter(|| {
            let mut acc = vecs[0].clone();
            for v in &vecs[1..] {
                acc.and_assign(black_box(v));
            }
            acc.count_ones()
        })
    });
    group.bench_function("count_and", |b| {
        b.iter(|| black_box(&vecs[0]).count_and(&vecs[1]))
    });
    group.finish();
}

criterion_group!(benches, bench_search, bench_patternset, bench_bitvec_fused);

/// After the Criterion pass, run the interleaved-median suite once and
/// append it to the hot-path trajectory — same rows, same schema, same
/// gate as `repro -- micro`.
fn append_hotpath_run() {
    let scale = ExperimentScale::tiny();
    let rows = hotpath::run(scale);
    for r in &rows {
        println!(
            "{:<34} {:>10.0}ns vs {:>10.0}ns  speedup {:>5.2}x  gated={}",
            r.name, r.median_ns, r.baseline_ns, r.speedup, r.gated
        );
    }
    let path = trajectory::hotpath_output_path();
    let run = trajectory::hotpath_run_from_rows("bench", scale.records, rows);
    match trajectory::append_hotpath_run(&path, run) {
        Ok(doc) => println!(
            "trajectory: appended run #{} to {}",
            doc.runs.len(),
            path.display()
        ),
        Err(e) => eprintln!("trajectory: could not write {}: {e}", path.display()),
    }
}

fn main() {
    benches();
    append_hotpath_run();
}
