//! Experiment harness regenerating every table and figure of the CIAO
//! paper (see `EXPERIMENTS.md` at the repository root for the index).
//!
//! Each experiment is a pure function from parameters to printable
//! rows, so the same code backs the `repro` binary, the integration
//! tests that assert the paper's *shapes*, and the Criterion benches.
//!
//! Scale: the paper runs on 5–27 GB datasets; defaults here are sized
//! for seconds-per-experiment on a laptop. Absolute times differ from
//! the paper; the shapes (who wins, where the knees are) are what the
//! assertions check.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf_gate;
pub mod table;
pub mod trajectory;

pub use experiments::datasets::ExperimentScale;
