//! `repro` — regenerate every table and figure of the CIAO paper.
//!
//! ```text
//! cargo run --release -p ciao_bench --bin repro -- all
//! cargo run --release -p ciao_bench --bin repro -- fig3 fig6 table4
//! CIAO_SCALE_RECORDS=100000 cargo run --release -p ciao_bench --bin repro -- fig5
//! cargo run --release -p ciao_bench --bin repro -- micro
//! cargo run --release -p ciao_bench --bin repro -- check-perf \
//!     --baseline BENCH_hotpath.json --tolerance-pct 25
//! ```
//!
//! Absolute times will not match the paper (our substrate is a
//! simulator at laptop scale, not the authors' testbed); the printed
//! shapes — who wins, where partial loading kicks in, which workloads
//! benefit — are the reproduction targets. See EXPERIMENTS.md.

use ciao_bench::experiments::{
    ablation, durability, end_to_end, fig6, hotpath, micro, profile, service, sql, table4, tables,
};
use ciao_bench::table::{f3, pct, TextTable};
use ciao_bench::{perf_gate, trajectory, ExperimentScale};
use ciao_datagen::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check-perf") {
        check_perf(&args[1..]);
        return;
    }
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "table4",
            "headline",
            "ablation",
            "service",
            "sql",
            "profile",
            "durability",
            "micro",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let scale = ExperimentScale::default();
    println!(
        "# CIAO reproduction — {} records/dataset, {} queries/workload\n",
        scale.records, scale.queries
    );

    // Cached cross-experiment state.
    let mut e2e_cache: std::collections::HashMap<&str, Vec<end_to_end::EndToEndRow>> =
        std::collections::HashMap::new();
    let mut micro_env: Option<micro::MicroEnv> = None;

    for target in targets {
        match target {
            "table1" => print_table1(),
            "table2" => print_table2(),
            "table3" => print_table3(),
            "fig3" => print_end_to_end("fig3", Dataset::WinLog, scale, &mut e2e_cache),
            "fig4" => print_end_to_end("fig4", Dataset::Yelp, scale, &mut e2e_cache),
            "fig5" => print_end_to_end("fig5", Dataset::Ycsb, scale, &mut e2e_cache),
            "fig6" => print_fig6(scale),
            "fig7" | "fig8" => print_selectivity(target, scale, &mut micro_env),
            "fig9" | "fig10" => print_overlap(target, scale, &mut micro_env),
            "fig11" | "fig12" => print_skewness(target, scale, &mut micro_env),
            "table4" => print_table4(),
            "headline" => print_headline(scale, &mut e2e_cache),
            "ablation" => print_ablation(),
            "service" => print_service(scale),
            "sql" => print_sql(scale),
            "profile" => print_profile(scale),
            "durability" => print_durability(scale),
            "micro" => print_hotpath(scale),
            "validate-bench" => validate_bench(),
            other => eprintln!("unknown experiment `{other}` (see EXPERIMENTS.md)"),
        }
    }
}

fn print_table1() {
    println!("## Table I — supported predicates and pattern strings\n");
    let mut t = TextTable::new(&["Supported Predicate", "Example", "Pattern String"]);
    for row in tables::table1() {
        t.row(&[row.kind.to_string(), row.example, row.pattern]);
    }
    println!("{t}");
}

fn print_table2() {
    println!("## Table II — predicate templates and candidate counts\n");
    let mut t = TextTable::new(&["Dataset", "Predicate Template", "#Candidates"]);
    for row in tables::table2() {
        t.row(&[
            row.dataset.to_string(),
            row.template.to_string(),
            row.candidates.to_string(),
        ]);
    }
    println!("{t}");
}

fn print_table3() {
    println!("## Table III — end-to-end workloads (measured from generated presets)\n");
    let mut t = TextTable::new(&[
        "Workload",
        "#Predicates",
        "Min/Max #Predicates",
        "Distribution",
        "Skewness factor",
    ]);
    for row in tables::table3(5) {
        t.row(&[
            row.workload.to_string(),
            row.total_predicates.to_string(),
            format!("{}/{}", row.min_predicates, row.max_predicates),
            row.distribution,
            f3(row.skewness),
        ]);
    }
    println!("{t}");
    println!("(paper: A 732 preds Zipfian(1.5); B 617 Zipfian(2); C 607 Uniform — our Zipf\n parameterization differs, see ciao-workload docs; A is most skewed in both.)\n");
}

fn print_end_to_end(
    fig: &str,
    dataset: Dataset,
    scale: ExperimentScale,
    cache: &mut std::collections::HashMap<&str, Vec<end_to_end::EndToEndRow>>,
) {
    let key: &'static str = match dataset {
        Dataset::WinLog => "winlog",
        Dataset::Yelp => "yelp",
        Dataset::Ycsb => "ycsb",
    };
    let rows = cache
        .entry(key)
        .or_insert_with(|| end_to_end::run(dataset, scale));
    println!(
        "## {} — end-to-end vs budget, {} ({} records)\n",
        fig.to_uppercase(),
        dataset,
        scale.records
    );
    let mut t = TextTable::new(&[
        "Workload",
        "Budget(µs)",
        "#Pushed",
        "Prefilter(s)",
        "Loading(s)",
        "Query(s)",
        "Total(s)",
        "LoadRatio",
        "Skipping queries",
    ]);
    for r in rows.iter() {
        t.row(&[
            r.workload.to_string(),
            format!("{:.0}", r.budget),
            r.pushed.to_string(),
            f3(r.prefilter_s),
            f3(r.load_s),
            f3(r.query_s),
            f3(r.total_s()),
            pct(r.loading_ratio),
            r.queries_with_skipping.to_string(),
        ]);
    }
    println!("{t}");
}

fn print_fig6(scale: ExperimentScale) {
    println!("## Fig 6 — % of queries benefiting from data skipping (YCSB, workload C)\n");
    let rows = fig6::run(scale, &[25.0, 50.0, 75.0, 100.0, 125.0]);
    let mut t = TextTable::new(&["Budget(µs)", "Benefiting", "Total", "Fraction"]);
    for r in rows {
        t.row(&[
            format!("{:.0}", r.budget),
            r.benefiting.to_string(),
            r.total.to_string(),
            pct(r.fraction()),
        ]);
    }
    println!("{t}");
    println!("(paper: 37%–68% of queries benefit despite the flat aggregate plot.)\n");
}

fn micro_env(scale: ExperimentScale, slot: &mut Option<micro::MicroEnv>) -> &micro::MicroEnv {
    slot.get_or_insert_with(|| micro::MicroEnv::new(scale))
}

fn print_micro_loading(title: &str, note: &str, rows: &[micro::MicroOutcome]) {
    println!("## {title}\n");
    let mut t = TextTable::new(&[
        "Config",
        "Loading(s)",
        "LoadRatio",
        "Covered queries",
        "Skew factor",
    ]);
    for r in rows {
        t.row(&[
            r.label.clone(),
            f3(r.loading_s),
            pct(r.loading_ratio),
            format!("{}/5", r.covered_queries),
            f3(r.skew_factor),
        ]);
    }
    println!("{t}");
    println!("{note}\n");
}

fn print_micro_queries(title: &str, rows: &[micro::MicroOutcome]) {
    println!("## {title}\n");
    let mut t = TextTable::new(&["Config", "q0(ms)", "q1(ms)", "q2(ms)", "q3(ms)", "q4(ms)"]);
    for r in rows {
        let mut cells = vec![r.label.clone()];
        cells.extend(r.per_query_s.iter().map(|s| format!("{:.3}", s * 1e3)));
        t.row(&cells);
    }
    println!("{t}");
}

fn print_selectivity(fig: &str, scale: ExperimentScale, slot: &mut Option<micro::MicroEnv>) {
    let rows = micro::selectivity_sweep(micro_env(scale, slot));
    if fig == "fig7" {
        print_micro_loading(
            "Fig 7 — loading time & ratio vs predicate selectivity (WinLog)",
            "(paper: lower selectivity → fewer objects loaded → lower loading time.)",
            &rows,
        );
    } else {
        print_micro_queries(
            "Fig 8 — per-query time vs predicate selectivity (WinLog)",
            &rows,
        );
    }
}

fn print_overlap(fig: &str, scale: ExperimentScale, slot: &mut Option<micro::MicroEnv>) {
    let rows = micro::overlap_sweep(micro_env(scale, slot));
    if fig == "fig9" {
        print_micro_loading(
            "Fig 9 — loading time & ratio vs predicate overlap (WinLog)",
            "(paper: Lol/Mol cannot partially load; Hol's covered queries cause a drastic drop.)",
            &rows,
        );
    } else {
        print_micro_queries(
            "Fig 10 — per-query time vs predicate overlap (WinLog)",
            &rows,
        );
    }
}

fn print_skewness(fig: &str, scale: ExperimentScale, slot: &mut Option<micro::MicroEnv>) {
    let rows = micro::skewness_sweep(micro_env(scale, slot));
    if fig == "fig11" {
        print_micro_loading(
            "Fig 11 — loading time & ratio vs predicate skewness (WinLog)",
            "(paper: only the fully-covering Hsk workload enables partial loading.)",
            &rows,
        );
    } else {
        print_micro_queries(
            "Fig 12 — per-query time vs predicate skewness (WinLog)",
            &rows,
        );
    }
}

fn print_table4() {
    println!("## Table IV — cost-model calibration R² across platforms\n");
    let mut t = TextTable::new(&["Platform", "Simulated hardware", "R² (ours)", "R² (paper)"]);
    for row in table4::run(7) {
        t.row(&[
            row.platform,
            row.hardware,
            f3(row.r_squared),
            f3(row.paper_r_squared),
        ]);
    }
    println!("{t}");
}

fn print_ablation() {
    println!("## Ablation — selection-algorithm quality on a real WinLog workload\n");
    let mut t = TextTable::new(&[
        "Budget(µs)",
        "#Cands",
        "Alg1 f(S)",
        "Alg2 f(S)",
        "max(1,2)",
        "PartialEnum",
        "Optimal",
    ]);
    for r in ablation::run(8, &[0.25, 0.5, 1.0, 2.0, 4.0], 3) {
        t.row(&[
            format!("{:.2}", r.budget),
            r.candidates.to_string(),
            f3(r.alg1),
            f3(r.alg2),
            f3(r.max_of_both),
            f3(r.partial_enum),
            r.optimal.map_or("-".into(), f3),
        ]);
    }
    println!("{t}");
    println!("(paper uses max(Alg1, Alg2) with a ½(1−1/e) guarantee; partial enumeration\n lifts that to (1−1/e) at O(n³) planning cost.)\n");
}

fn print_service(scale: ExperimentScale) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("## Service — sharded ingest/query vs the single-threaded server (YCSB, {cores} core(s) available)\n");
    let rows = service::run(scale, &[1, 2, 4, 8]);
    let mut t = TextTable::new(&[
        "Config",
        "Shards",
        "Ingest(s)",
        "Records/s",
        "Speedup",
        "Query(ms)",
        "Ack p50/p99(µs)",
        "Query p50/p99(µs)",
        "Blocked(ms)",
        "Counts==baseline",
    ]);
    for r in &rows {
        t.row(&[
            r.label.clone(),
            r.shards.to_string(),
            f3(r.ingest_s),
            format!("{:.0}", r.records_per_s),
            format!("{:.2}x", r.speedup),
            format!("{:.3}", r.query_ms),
            format!("{:.0}/{:.0}", r.ingest_ack_p50_us, r.ingest_ack_p99_us),
            format!("{:.0}/{:.0}", r.query_p50_us, r.query_p99_us),
            format!("{:.1}", r.blocked_ms),
            if r.counts_ok {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{t}");
    println!("(beyond the paper: client prefiltering is pre-paid on both sides; the table\n isolates what sharding the server loop buys. The ×1 gap vs the baseline is\n the queue+lock tax; speedup beyond it requires the cores to exist — on a\n single-core host every row shows only that coordination overhead. The ack\n and query quantiles come from the service's own telemetry histograms.)\n");

    let path = trajectory::output_path();
    let run = trajectory::run_from_rows("repro", scale.records, None, &rows);
    match trajectory::append_run(&path, run) {
        Ok(doc) => println!(
            "(trajectory: appended run #{} to {})\n",
            doc.runs.len(),
            path.display()
        ),
        Err(e) => eprintln!("(trajectory: could not write {}: {e})\n", path.display()),
    }
}

fn print_sql(scale: ExperimentScale) {
    println!("## SQL — frontend battery vs the full-scan oracle (YCSB, 2 shards)\n");
    let report = sql::run(scale, 2);
    let mut t = TextTable::new(&[
        "Statement",
        "Rows",
        "Covered",
        "Pruned blocks",
        "Skipped rows",
        "Exec(ms)",
        "==Oracle",
    ]);
    for r in &report.rows {
        t.row(&[
            r.statement.clone(),
            r.rows.to_string(),
            if r.covered { "yes".into() } else { "no".into() },
            r.blocks_pruned.to_string(),
            r.rows_skipped.to_string(),
            format!("{:.3}", r.exec_ms),
            if r.matches_oracle {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{t}");
    println!(
        "(stage medians on the pushdown service: parse {:.1} µs, plan {:.1} µs, exec {:.1} µs.\n Covered WHERE clauses ride the same pushed bitvectors and zone maps as the\n COUNT(*) path, so aggregates skip blocks too; every answer is bit-identical\n to the zero-budget single-shard service that scanned everything.)\n",
        report.parse_p50_us, report.plan_p50_us, report.exec_p50_us
    );
}

fn print_profile(scale: ExperimentScale) {
    println!("## Profile — EXPLAIN ANALYZE battery through the query profiler (YCSB, 2 shards)\n");
    let report = profile::run(scale, 2);
    let mut t = TextTable::new(&[
        "Statement",
        "Matched",
        "Blocks",
        "Pruned",
        "Skipped rows",
        "Parked parsed",
        "Clauses",
        "Exec(ms)",
    ]);
    for r in &report.rows {
        t.row(&[
            r.statement.clone(),
            r.rows_matched.to_string(),
            r.blocks_total.to_string(),
            r.blocks_pruned.to_string(),
            r.rows_skipped.to_string(),
            r.parked_parsed.to_string(),
            r.clauses.to_string(),
            format!("{:.3}", r.exec_ms),
        ]);
    }
    println!("{t}");

    println!("### Workload statistics after the battery (EWMA α = 0.2)\n");
    let mut w = TextTable::new(&["Clause", "Pushed", "Seen", "Frequency", "Selectivity"]);
    for c in &report.clauses {
        w.row(&[
            c.text.clone(),
            if c.pushed { "yes".into() } else { "no".into() },
            c.queries_seen.to_string(),
            f3(c.frequency),
            c.selectivity.map_or("-".into(), f3),
        ]);
    }
    println!("{w}");
    println!(
        "(slow-query log captured {} statements at threshold 0; the last statement's\n span tree — {} spans — exported {} Chrome trace events to {}. Open it in\n chrome://tracing or Perfetto to see parse/plan/execute and per-shard rows.)\n",
        report.slow_queries,
        report.trace_spans,
        report.trace_events,
        report.trace_path.display()
    );
}

fn print_durability(scale: ExperimentScale) {
    println!(
        "## Durability — ack overhead of the write-ahead log by sync policy (YCSB, 2 shards)\n"
    );
    let rows = durability::run(scale, 2);
    let mut t = TextTable::new(&[
        "Config",
        "Ingest(s)",
        "Records/s",
        "vs memory",
        "Ack p50/p99(µs)",
        "WAL appends",
        "fsyncs",
        "Checkpoint(ms)",
        "Counts==memory",
    ]);
    for r in &rows {
        t.row(&[
            r.service.label.clone(),
            f3(r.service.ingest_s),
            format!("{:.0}", r.service.records_per_s),
            format!("{:.2}x", r.service.speedup),
            format!(
                "{:.0}/{:.0}",
                r.service.ingest_ack_p50_us, r.service.ingest_ack_p99_us
            ),
            r.wal_appends.to_string(),
            r.wal_syncs.to_string(),
            format!("{:.1}", r.checkpoint_ms),
            if r.service.counts_ok {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{t}");
    println!("(beyond the paper: the ack a producer observes is only as strong as the fsync\n cadence behind it. `always` buys crash-durable acks at one fsync per chunk;\n `every-8` amortizes the cost into a bounded loss window; `never` leaves\n writeback to the OS. Identical counts across rows — durability may cost\n time, never answers.)\n");

    let path = trajectory::output_path();
    let service_rows: Vec<_> = rows.iter().map(|r| r.service.clone()).collect();
    let run = trajectory::run_from_rows("repro-durability", scale.records, None, &service_rows);
    match trajectory::append_run(&path, run) {
        Ok(doc) => println!(
            "(trajectory: appended run #{} to {})\n",
            doc.runs.len(),
            path.display()
        ),
        Err(e) => eprintln!("(trajectory: could not write {}: {e})\n", path.display()),
    }
}

fn print_hotpath(scale: ExperimentScale) {
    println!(
        "## Micro — hot-path kernels vs their scalar references ({} records)\n",
        scale.records
    );
    let rows = hotpath::run(scale);
    let mut t = TextTable::new(&[
        "Kernel",
        "Group",
        "Median(ns)",
        "Scalar(ns)",
        "Speedup",
        "MB/s",
        "Gated",
    ]);
    for r in &rows {
        t.row(&[
            r.name.clone(),
            r.group.clone(),
            format!("{:.0}", r.median_ns),
            format!("{:.0}", r.baseline_ns),
            format!("{:.2}x", r.speedup),
            format!("{:.0}", r.throughput_mb_s),
            if r.gated { "yes".into() } else { "no".into() },
        ]);
    }
    println!("{t}");
    println!("(speedups are in-run ratios vs the scalar reference, so they transfer across\n machines; `repro -- check-perf` gates on them. Ungated rows depend on core\n count and are recorded for the trajectory only.)\n");

    let path = trajectory::hotpath_output_path();
    let run = trajectory::hotpath_run_from_rows("repro", scale.records, rows);
    match trajectory::append_hotpath_run(&path, run) {
        Ok(doc) => println!(
            "(trajectory: appended run #{} to {})\n",
            doc.runs.len(),
            path.display()
        ),
        Err(e) => eprintln!("(trajectory: could not write {}: {e})\n", path.display()),
    }
}

/// `repro -- check-perf --baseline <file> [--current <file>]
/// [--tolerance-pct <pct>]` — compare the latest hot-path run against
/// the committed baseline and exit non-zero on regression. `--current`
/// defaults to the hot-path output path (env-overridable), so CI runs
/// `repro -- micro` into a scratch file and gates it here.
fn check_perf(args: &[String]) {
    let mut baseline_path = None;
    let mut current_path = trajectory::hotpath_output_path();
    let mut tolerance_pct = 25.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = Some(std::path::PathBuf::from(value("--baseline"))),
            "--current" => current_path = std::path::PathBuf::from(value("--current")),
            "--tolerance-pct" => {
                tolerance_pct = value("--tolerance-pct")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--tolerance-pct: {e}")))
            }
            other => die(&format!("unknown check-perf argument `{other}`")),
        }
    }
    let Some(baseline_path) = baseline_path else {
        die("check-perf requires --baseline <file>")
    };
    let baseline = trajectory::read_hotpath(&baseline_path).unwrap_or_else(|e| die(&e));
    let current = trajectory::read_hotpath(&current_path).unwrap_or_else(|e| die(&e));
    println!(
        "## check-perf — {} vs baseline {}\n",
        current_path.display(),
        baseline_path.display()
    );
    match perf_gate::check(&baseline, &current, tolerance_pct) {
        Ok(report) => {
            print!("{}", report.render());
            if !report.pass {
                std::process::exit(1);
            }
        }
        Err(e) => die(&e),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("check-perf: {msg}");
    std::process::exit(2);
}

fn validate_bench() {
    let mut failed = false;
    for (doc, schema) in [
        (trajectory::output_path(), trajectory::schema_path()),
        (
            trajectory::hotpath_output_path(),
            trajectory::hotpath_schema_path(),
        ),
    ] {
        match trajectory::validate_files(&doc, &schema) {
            Ok(()) => println!(
                "## validate-bench — {} conforms to {}\n",
                doc.display(),
                schema.display()
            ),
            Err(report) => {
                eprintln!("## validate-bench FAILED\n\n{report}\n");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_headline(
    scale: ExperimentScale,
    cache: &mut std::collections::HashMap<&str, Vec<end_to_end::EndToEndRow>>,
) {
    println!("## Headline — max speedups over the zero-budget baseline\n");
    let mut t = TextTable::new(&["Dataset", "Loading ×", "Query ×", "End-to-end ×"]);
    for (key, ds) in [
        ("winlog", Dataset::WinLog),
        ("yelp", Dataset::Yelp),
        ("ycsb", Dataset::Ycsb),
    ] {
        let rows = cache
            .entry(key)
            .or_insert_with(|| end_to_end::run(ds, scale));
        let h = end_to_end::headline(rows);
        t.row(&[
            ds.to_string(),
            format!("{:.1}", h.loading_speedup),
            format!("{:.1}", h.query_speedup),
            format!("{:.1}", h.end_to_end_speedup),
        ]);
    }
    println!("{t}");
    println!("(paper: up to 21x loading, 23x query, 19x end-to-end at a 1 µs budget.)\n");
}
