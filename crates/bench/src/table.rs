//! Minimal fixed-width table printer for the `repro` binary.

/// A printable table: header + rows of equal arity.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with column-wise padding.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str(" | ");
                }
                let cell = &cells[i];
                out.push_str(cell);
                out.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        fmt_row(&sep, &widths, &mut out);
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("a"));
        // All lines same width.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
    }
}
