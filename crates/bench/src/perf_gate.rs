//! CI perf-regression gate over the hot-path trajectory.
//!
//! The gate is machine-portable because it never compares absolute
//! nanoseconds across runs: every [`HotpathRow`] carries the ratio of
//! its in-run scalar reference to its optimized median (`speedup`),
//! measured interleaved in the same process. A slower runner scales
//! both sides of the ratio equally, so the ratio regresses only when
//! the *optimized kernel itself* regresses relative to its reference —
//! e.g. an injected 2× slowdown halves the ratio and trips the gate at
//! any tolerance below 50%.
//!
//! Rows with `gated == false` (shard scaling, anything topology-bound)
//! are reported but never enforced, so a 1-core CI runner cannot fail
//! the build on core count.

use crate::trajectory::{HotpathRun, HotpathTrajectory};

/// One gated row's verdict.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Row name (the join key across runs).
    pub name: String,
    /// Speedup ratio in the committed baseline run.
    pub baseline_speedup: f64,
    /// Speedup ratio in the current run; `None` when the current run
    /// no longer measures this row (itself a failure).
    pub current_speedup: Option<f64>,
    /// Minimum acceptable current ratio:
    /// `baseline × (1 − tolerance/100)`.
    pub floor: f64,
    /// Whether this row passes.
    pub pass: bool,
}

/// The whole gate verdict.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-row verdicts for every gated baseline row.
    pub rows: Vec<GateRow>,
    /// Tolerance used, percent.
    pub tolerance_pct: f64,
    /// `true` when every gated row passes.
    pub pass: bool,
}

impl GateReport {
    /// Renders the verdict as a printable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate (tolerance {:.0}%): speedup ratios vs committed baseline\n",
            self.tolerance_pct
        ));
        for r in &self.rows {
            let current = r
                .current_speedup
                .map_or("MISSING".to_owned(), |s| format!("{s:.2}x"));
            out.push_str(&format!(
                "  {:<4} {:<34} baseline {:>6.2}x  floor {:>6.2}x  current {:>7}\n",
                if r.pass { "ok" } else { "FAIL" },
                r.name,
                r.baseline_speedup,
                r.floor,
                current,
            ));
        }
        out.push_str(if self.pass {
            "PASS: no gated kernel regressed\n"
        } else {
            "FAIL: at least one gated kernel regressed past tolerance\n"
        });
        out
    }
}

/// Compares the latest run of `current` against the latest run of
/// `baseline`, gated rows only. A gated baseline row missing from the
/// current run fails (a kernel silently dropped from the suite is a
/// regression, not a pass); rows only the current run has are ignored
/// (they have no baseline to regress from yet).
pub fn check(
    baseline: &HotpathTrajectory,
    current: &HotpathTrajectory,
    tolerance_pct: f64,
) -> Result<GateReport, String> {
    let latest = |doc: &HotpathTrajectory, what: &str| -> Result<HotpathRun, String> {
        doc.runs
            .last()
            .cloned()
            .ok_or_else(|| format!("{what} trajectory has no runs"))
    };
    let base_run = latest(baseline, "baseline")?;
    let cur_run = latest(current, "current")?;
    let factor = 1.0 - tolerance_pct / 100.0;
    let mut rows = Vec::new();
    for b in base_run.rows.iter().filter(|r| r.gated) {
        let floor = b.speedup * factor;
        let current_speedup = cur_run
            .rows
            .iter()
            .find(|c| c.name == b.name)
            .map(|c| c.speedup);
        rows.push(GateRow {
            name: b.name.clone(),
            baseline_speedup: b.speedup,
            current_speedup,
            floor,
            pass: current_speedup.is_some_and(|s| s >= floor),
        });
    }
    if rows.is_empty() {
        return Err("baseline run has no gated rows — nothing to enforce".to_owned());
    }
    let pass = rows.iter().all(|r| r.pass);
    Ok(GateReport {
        rows,
        tolerance_pct,
        pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::hotpath::HotpathRow;
    use crate::trajectory::SCHEMA_VERSION;

    fn row(name: &str, speedup: f64, gated: bool) -> HotpathRow {
        HotpathRow {
            name: name.to_owned(),
            group: "test".to_owned(),
            median_ns: 100.0,
            baseline_ns: 100.0 * speedup,
            speedup,
            throughput_mb_s: 1.0,
            gated,
        }
    }

    fn doc(rows: Vec<HotpathRow>) -> HotpathTrajectory {
        HotpathTrajectory {
            schema_version: SCHEMA_VERSION,
            runs: vec![HotpathRun {
                source: "test".into(),
                unix_time_s: 0,
                records: 0,
                cores: 1,
                rows,
            }],
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = doc(vec![row("a", 4.0, true), row("b", 2.0, true)]);
        let current = doc(vec![row("a", 3.2, true), row("b", 2.4, true)]);
        let report = check(&baseline, &current, 25.0).unwrap();
        assert!(report.pass, "{}", report.render());
        // floor for a = 3.0, current 3.2 — a 20% drift survives.
        assert!(report.rows.iter().all(|r| r.pass));
    }

    #[test]
    fn injected_2x_slowdown_trips_the_gate() {
        let baseline = doc(vec![row("a", 4.0, true)]);
        // Optimized path twice as slow ⇒ ratio halves: 4.0 → 2.0,
        // under the 3.0 floor at 25% tolerance.
        let current = doc(vec![row("a", 2.0, true)]);
        let report = check(&baseline, &current, 25.0).unwrap();
        assert!(!report.pass);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn ungated_rows_cannot_fail_the_gate() {
        let baseline = doc(vec![row("a", 4.0, true), row("shard", 2.0, false)]);
        // The topology-bound row collapses; the gate ignores it.
        let current = doc(vec![row("a", 4.0, true), row("shard", 0.1, false)]);
        let report = check(&baseline, &current, 25.0).unwrap();
        assert!(report.pass, "{}", report.render());
        assert_eq!(report.rows.len(), 1, "only gated rows are enforced");
    }

    #[test]
    fn dropped_gated_row_fails() {
        let baseline = doc(vec![row("a", 4.0, true)]);
        let current = doc(vec![row("other", 9.0, true)]);
        let report = check(&baseline, &current, 25.0).unwrap();
        assert!(!report.pass);
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn new_current_rows_without_baseline_are_ignored() {
        let baseline = doc(vec![row("a", 4.0, true)]);
        let current = doc(vec![row("a", 4.0, true), row("brand_new", 0.2, true)]);
        let report = check(&baseline, &current, 25.0).unwrap();
        assert!(report.pass, "{}", report.render());
    }

    #[test]
    fn latest_run_is_compared_not_the_first() {
        let mut baseline = doc(vec![row("a", 10.0, true)]);
        baseline.runs.push(HotpathRun {
            source: "test".into(),
            unix_time_s: 1,
            records: 0,
            cores: 1,
            rows: vec![row("a", 4.0, true)],
        });
        let current = doc(vec![row("a", 3.5, true)]);
        // Against the stale first run (10.0) this would fail; against
        // the latest (4.0, floor 3.0) it passes.
        let report = check(&baseline, &current, 25.0).unwrap();
        assert!(report.pass, "{}", report.render());
    }

    #[test]
    fn empty_inputs_are_errors() {
        let empty = HotpathTrajectory::empty();
        let one = doc(vec![row("a", 4.0, true)]);
        assert!(check(&empty, &one, 25.0).is_err());
        assert!(check(&one, &empty, 25.0).is_err());
        let ungated_only = doc(vec![row("shard", 2.0, false)]);
        assert!(check(&ungated_only, &one, 25.0).is_err());
    }
}
