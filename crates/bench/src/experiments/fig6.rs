//! Fig. 6: the fraction of queries that benefit from data skipping on
//! the "challenging" workload (YCSB, workload C), per budget.
//!
//! The aggregated Fig. 5 plot hides the win; per-query timing shows
//! 37–68% of queries still run faster thanks to skipping. We measure
//! each query twice on the same loaded state — once through the
//! plan-aware executor (skipping) and once through an executor with an
//! empty registry (full scans) — and count the queries whose skipping
//! run was faster.

use crate::experiments::datasets::{ndjson, ExperimentScale};
use ciao::{CiaoConfig, PushdownPlan, Server};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_engine::Executor;
use ciao_json::RecordChunk;
use ciao_workload::{build_pool, WorkloadConfig};
use std::sync::Arc;
use std::time::Instant;

/// One Fig. 6 point.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Budget (µs/record).
    pub budget: f64,
    /// Queries where the skipping run was strictly faster.
    pub benefiting: usize,
    /// Total queries.
    pub total: usize,
}

impl Fig6Row {
    /// The plotted fraction.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.benefiting as f64 / self.total as f64
        }
    }
}

/// Runs the Fig. 6 measurement.
pub fn run(scale: ExperimentScale, budgets: &[f64]) -> Vec<Fig6Row> {
    let data = ndjson(Dataset::Ycsb, scale);
    let all = RecordChunk::from_ndjson(&data);
    let pool = build_pool(Dataset::Ycsb);
    let mut cfg = WorkloadConfig::workload_c(Dataset::Ycsb, 99);
    cfg.queries = scale.queries;
    let queries = cfg.generate(&pool);

    let sample: Vec<_> = all
        .iter()
        .take(scale.sample)
        .filter_map(|r| ciao_json::parse(r).ok())
        .collect();
    let schema = Arc::new(Schema::infer(&sample).expect("schema"));
    let config = CiaoConfig::default();

    budgets
        .iter()
        .map(|&budget| {
            let plan =
                PushdownPlan::build(&queries, &sample, &config.cost_model, budget).expect("plan");
            let mut server = Server::new(plan, Arc::clone(&schema), config.block_size);
            let prefilter = server.plan().prefilter();
            for chunk in all.split(config.chunk_size) {
                let filter = prefilter.run_chunk(&chunk);
                server.ingest(&chunk, &filter);
            }
            server.finalize();

            let no_skip = Executor::default();
            let mut benefiting = 0;
            for q in &queries {
                // Interleave and repeat to be robust to timer noise at
                // this scale.
                let reps = 3;
                let mut with = f64::INFINITY;
                let mut without = f64::INFINITY;
                for _ in 0..reps {
                    let t0 = Instant::now();
                    let a = server.execute(q);
                    with = with.min(t0.elapsed().as_secs_f64());
                    let t1 = Instant::now();
                    let b = no_skip.execute_count(server.table(), server.parked(), q);
                    without = without.min(t1.elapsed().as_secs_f64());
                    assert_eq!(a.count, b.count, "skipping changed a result");
                }
                if with < without {
                    benefiting += 1;
                }
            }
            Fig6Row {
                budget,
                benefiting,
                total: queries.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipping_benefits_some_queries() {
        let rows = run(ExperimentScale::tiny(), &[75.0]);
        assert_eq!(rows.len(), 1);
        let f = rows[0].fraction();
        assert!(
            f > 0.05,
            "at a healthy budget some queries must benefit from skipping (got {f})"
        );
    }
}
