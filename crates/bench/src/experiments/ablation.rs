//! Optimizer ablation (a DESIGN.md design-choice study, not a paper
//! figure): objective quality of Algorithm 1, Algorithm 2, the paper's
//! max-of-both, and partial enumeration, against the exhaustive
//! optimum on real workload instances at varied budgets.

use ciao_datagen::Dataset;
use ciao_optimizer::{
    greedy_benefit, greedy_ratio, solve_exhaustive, solve_partial_enum, CostModel, InstanceBuilder,
};
use ciao_predicate::{compile_clause, Query, SelectivityEstimator};
use ciao_workload::{build_pool, WorkloadConfig};

/// One ablation row: objectives at one budget.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Budget (µs/record).
    pub budget: f64,
    /// Candidate pool size after dedup.
    pub candidates: usize,
    /// Algorithm 1 objective.
    pub alg1: f64,
    /// Algorithm 2 objective.
    pub alg2: f64,
    /// max(Alg1, Alg2) — the paper's solver.
    pub max_of_both: f64,
    /// Partial enumeration (seed 2).
    pub partial_enum: f64,
    /// Exhaustive optimum (`None` when the instance is too large).
    pub optimal: Option<f64>,
}

/// Runs the ablation on a real WinLog workload. Queries are capped so
/// the candidate pool stays within exhaustive reach when possible.
pub fn run(queries_count: usize, budgets: &[f64], seed: u64) -> Vec<AblationRow> {
    let dataset = Dataset::WinLog;
    let sample = dataset.generate(seed, 2_000);
    let pool = build_pool(dataset);
    let mut cfg = WorkloadConfig::workload_b(dataset, seed);
    cfg.queries = queries_count;
    let queries = cfg.generate(&pool);

    let estimator = SelectivityEstimator::new(&sample);
    let clauses: Vec<_> = queries.iter().flat_map(Query::pushable_clauses).collect();
    let sels = estimator.estimate_all(clauses);
    let model = CostModel::default_uncalibrated();
    let mean_len = sample
        .iter()
        .map(|r| ciao_json::to_string(r).len())
        .sum::<usize>() as f64
        / sample.len() as f64;

    budgets
        .iter()
        .map(|&budget| {
            let instance = InstanceBuilder::new(&sels, budget).build(&queries, |c| {
                model.clause_cost(&compile_clause(c).unwrap(), mean_len, sels.get(c))
            });
            let alg1 = greedy_benefit(&instance).objective;
            let alg2 = greedy_ratio(&instance).objective;
            let partial = solve_partial_enum(&instance, 2).objective;
            let optimal = (instance.len() <= 20).then(|| solve_exhaustive(&instance).objective);
            AblationRow {
                budget,
                candidates: instance.len(),
                alg1,
                alg2,
                max_of_both: alg1.max(alg2),
                partial_enum: partial,
                optimal,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_hold_on_real_instances() {
        let rows = run(8, &[0.5, 1.0, 2.0, 4.0], 3);
        for r in &rows {
            assert!(r.max_of_both >= r.alg1 - 1e-12);
            assert!(r.max_of_both >= r.alg2 - 1e-12);
            assert!(
                r.partial_enum >= r.max_of_both - 1e-9,
                "partial enum {} below max-of-both {} at budget {}",
                r.partial_enum,
                r.max_of_both,
                r.budget
            );
            if let Some(opt) = r.optimal {
                assert!(r.partial_enum <= opt + 1e-9);
                assert!(r.max_of_both >= 0.5 * (1.0 - (-1.0f64).exp()) * opt - 1e-9);
            }
        }
        // Objectives grow with budget.
        for w in rows.windows(2) {
            assert!(w[1].max_of_both >= w[0].max_of_both - 1e-12);
        }
    }
}
