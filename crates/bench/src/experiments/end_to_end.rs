//! Figs. 3–5: end-to-end time vs budget, per workload, per dataset —
//! plus the headline speedup numbers.

use crate::experiments::datasets::{budget_sweep, ndjson, ExperimentScale};
use ciao::{CiaoConfig, Pipeline};
use ciao_datagen::Dataset;
use ciao_workload::{build_pool, WorkloadConfig};

/// One point of a Fig. 3/4/5 series.
#[derive(Debug, Clone)]
pub struct EndToEndRow {
    /// Workload label (A/B/C).
    pub workload: char,
    /// Budget (µs/record).
    pub budget: f64,
    /// Predicates pushed at this budget.
    pub pushed: usize,
    /// Prefiltering seconds (the stacked bottom segment).
    pub prefilter_s: f64,
    /// Loading seconds.
    pub load_s: f64,
    /// Query seconds (the full workload).
    pub query_s: f64,
    /// Fraction of records loaded into columnar form.
    pub loading_ratio: f64,
    /// Queries that skipped at least one row.
    pub queries_with_skipping: usize,
}

impl EndToEndRow {
    /// Total end-to-end seconds.
    pub fn total_s(&self) -> f64 {
        self.prefilter_s + self.load_s + self.query_s
    }
}

/// Runs the Fig. 3/4/5 sweep for one dataset: workloads A/B/C × the
/// dataset's budget sweep.
pub fn run(dataset: Dataset, scale: ExperimentScale) -> Vec<EndToEndRow> {
    let data = ndjson(dataset, scale);
    let pool = build_pool(dataset);
    let mut rows = Vec::new();
    for (label, mut cfg) in WorkloadConfig::presets(dataset, 99) {
        cfg.queries = scale.queries;
        let queries = cfg.generate(&pool);
        for &budget in budget_sweep(dataset) {
            let report = Pipeline::new(
                CiaoConfig::default()
                    .with_budget_micros(budget)
                    .with_sample_size(scale.sample),
            )
            .run(&data, &queries)
            .expect("pipeline");
            let (p, l, q) = report.timings.as_secs();
            rows.push(EndToEndRow {
                workload: label,
                budget,
                pushed: report.plan.len(),
                prefilter_s: p,
                load_s: l,
                query_s: q,
                loading_ratio: report.load.loading_ratio(),
                queries_with_skipping: report.queries_with_skipping(),
            });
        }
    }
    rows
}

/// The paper's headline: best speedups over the zero-budget baseline
/// across all datasets/workloads ("up to 21x loading, 23x query, 19x
/// end-to-end").
#[derive(Debug, Clone, Copy, Default)]
pub struct Headline {
    /// Max loading-time speedup.
    pub loading_speedup: f64,
    /// Max query-time speedup.
    pub query_speedup: f64,
    /// Max end-to-end speedup (including prefiltering cost).
    pub end_to_end_speedup: f64,
}

/// Computes headline speedups from end-to-end rows (grouped per
/// workload; budget 0 is the baseline).
pub fn headline(rows: &[EndToEndRow]) -> Headline {
    let mut h = Headline::default();
    for workload in ['A', 'B', 'C'] {
        let group: Vec<&EndToEndRow> = rows.iter().filter(|r| r.workload == workload).collect();
        let Some(base) = group.iter().find(|r| r.budget == 0.0) else {
            continue;
        };
        for r in &group {
            if r.budget == 0.0 {
                continue;
            }
            if r.load_s > 1e-9 {
                h.loading_speedup = h.loading_speedup.max(base.load_s / r.load_s);
            }
            if r.query_s > 1e-9 {
                h.query_speedup = h.query_speedup.max(base.query_s / r.query_s);
            }
            if r.total_s() > 1e-9 {
                h.end_to_end_speedup = h.end_to_end_speedup.max(base.total_s() / r.total_s());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winlog_sweep_shapes() {
        let rows = run(Dataset::WinLog, ExperimentScale::tiny());
        // 3 workloads × 6 budgets.
        assert_eq!(rows.len(), 18);

        // Baselines push nothing; positive budgets push something for
        // the skewed workloads.
        for r in rows.iter().filter(|r| r.budget == 0.0) {
            assert_eq!(r.pushed, 0);
            assert!((r.loading_ratio - 1.0).abs() < 1e-9);
        }
        let a_max: &EndToEndRow = rows
            .iter()
            .filter(|r| r.workload == 'A')
            .max_by(|x, y| x.budget.total_cmp(&y.budget))
            .unwrap();
        assert!(a_max.pushed > 0, "workload A should push predicates");

        // Workload A at max budget loads less than its baseline.
        assert!(
            a_max.loading_ratio < 1.0,
            "A should partially load (ratio {})",
            a_max.loading_ratio
        );

        // Headline speedups are positive and loading speedup > 1 for
        // this workload.
        let h = headline(&rows);
        assert!(
            h.loading_speedup > 1.0,
            "loading speedup {}",
            h.loading_speedup
        );
        assert!(h.query_speedup > 1.0, "query speedup {}", h.query_speedup);
    }
}
