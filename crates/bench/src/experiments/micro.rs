//! Micro-benchmarks of paper §VII-E (Figs. 7–12): sensitivity of
//! loading time, loading ratio, and per-query time to predicate
//! **selectivity**, **overlap**, and **skewness** — all on the Windows
//! System Log dataset, all with a *manually fixed* pushdown (the paper
//! pushes 2, 2, and 1 predicates respectively), so the optimizer is
//! out of the loop and the measured variable is isolated.

use crate::experiments::datasets::{ndjson, ExperimentScale};
use ciao::{CiaoConfig, PushdownPlan, Server};
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::{JsonValue, RecordChunk};
use ciao_predicate::{estimate_clause_selectivity, Clause, Query, SimplePredicate};
use ciao_workload::{predicate_counts, skewness_factor};
use std::sync::Arc;
use std::time::Instant;

/// The outcome of one micro-benchmark configuration.
#[derive(Debug, Clone)]
pub struct MicroOutcome {
    /// Configuration label (e.g. "sel=0.35", "Hol", "Hsk").
    pub label: String,
    /// Server loading seconds (the Fig. 7/9/11 bar).
    pub loading_s: f64,
    /// Loading ratio (records loaded / total).
    pub loading_ratio: f64,
    /// Per-query execution seconds, q0..q4 (the Fig. 8/10/12 bars).
    pub per_query_s: Vec<f64>,
    /// Per-query result counts (used by equivalence checks).
    pub per_query_count: Vec<usize>,
    /// Queries containing at least one pushed clause.
    pub covered_queries: usize,
    /// The paper's skewness factor for the workload.
    pub skew_factor: f64,
}

/// Shared environment for the micro-benchmarks.
pub struct MicroEnv {
    data: RecordChunk,
    sample: Vec<JsonValue>,
    schema: Arc<Schema>,
    config: CiaoConfig,
}

impl MicroEnv {
    /// Materializes the Windows-log environment at a scale.
    pub fn new(scale: ExperimentScale) -> MicroEnv {
        let text = ndjson(Dataset::WinLog, scale);
        let data = RecordChunk::from_ndjson(&text);
        let sample: Vec<JsonValue> = data
            .iter()
            .take(scale.sample)
            .filter_map(|r| ciao_json::parse(r).ok())
            .collect();
        let schema = Arc::new(Schema::infer(&sample).expect("schema"));
        MicroEnv {
            data,
            sample,
            schema,
            config: CiaoConfig::default(),
        }
    }

    /// All `info LIKE <kw>` clauses with their estimated selectivities,
    /// ascending by selectivity.
    pub fn keyword_clauses(&self) -> Vec<(Clause, f64)> {
        let mut out: Vec<(Clause, f64)> = ciao_datagen::text::keyword_pool(200)
            .into_iter()
            .map(|kw| {
                let clause = Clause::single(SimplePredicate::StrContains {
                    key: "info".into(),
                    needle: kw,
                });
                let sel = estimate_clause_selectivity(&clause, &self.sample);
                (clause, sel)
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }

    /// Picks `n` distinct clauses whose selectivity is nearest
    /// `target`, preferring the closest.
    pub fn clauses_near(&self, target: f64, n: usize) -> Vec<Clause> {
        let mut pool = self.keyword_clauses();
        pool.sort_by(|a, b| (a.1 - target).abs().total_cmp(&(b.1 - target).abs()));
        pool.into_iter().take(n).map(|(c, _)| c).collect()
    }

    /// Runs one configuration: fixed pushdown + 5 queries.
    pub fn run(&self, label: &str, queries: &[Query], pushed: &[Clause]) -> MicroOutcome {
        let plan = PushdownPlan::manual(pushed, queries, &self.sample, &self.config.cost_model);
        let covered_queries = plan
            .query_coverage
            .iter()
            .filter(|ids| !ids.is_empty())
            .count();
        let mut server = Server::new(plan, Arc::clone(&self.schema), self.config.block_size);
        let prefilter = server.plan().prefilter();
        let chunks = self.data.split(self.config.chunk_size);
        let filters: Vec<_> = chunks.iter().map(|c| prefilter.run_chunk(c)).collect();

        let t_load = Instant::now();
        for (chunk, filter) in chunks.iter().zip(&filters) {
            server.ingest(chunk, filter);
        }
        server.finalize();
        let loading_s = t_load.elapsed().as_secs_f64();

        let mut per_query_s = Vec::with_capacity(queries.len());
        let mut per_query_count = Vec::with_capacity(queries.len());
        for q in queries {
            let mut best = f64::INFINITY;
            let mut count = 0;
            for _ in 0..3 {
                let t = Instant::now();
                let out = server.execute(q);
                best = best.min(t.elapsed().as_secs_f64());
                count = out.count;
            }
            per_query_s.push(best);
            per_query_count.push(count);
        }

        MicroOutcome {
            label: label.to_owned(),
            loading_s,
            loading_ratio: server.load_stats().loading_ratio(),
            per_query_s,
            per_query_count,
            covered_queries,
            skew_factor: skewness_factor(&predicate_counts(queries)),
        }
    }
}

/// Figs. 7 & 8: three workloads at target selectivities 0.35 / 0.15 /
/// 0.01; 5 queries × 3 conjunctive predicates; 2 predicates pushed and
/// arranged to cover every query.
pub fn selectivity_sweep(env: &MicroEnv) -> Vec<MicroOutcome> {
    [0.35, 0.15, 0.01]
        .iter()
        .map(|&target| {
            // 12 clauses near the target: 2 pushed + 10 fillers.
            let picked = env.clauses_near(target, 12);
            let pushed = &picked[..2];
            let queries: Vec<Query> = (0..5)
                .map(|i| {
                    Query::new(
                        format!("q{i}"),
                        vec![
                            pushed[i % 2].clone(),
                            picked[2 + 2 * i].clone(),
                            picked[3 + 2 * i].clone(),
                        ],
                    )
                })
                .collect();
            env.run(&format!("sel={target}"), &queries, pushed)
        })
        .collect()
}

/// Figs. 9 & 10: overlap workloads Lol/Mol/Hol — queries with 1, 2,
/// and 4 conjunctive predicates respectively; 2 predicates pushed.
pub fn overlap_sweep(env: &MicroEnv) -> Vec<MicroOutcome> {
    // A pool of moderately selective predicates so conjunction effects
    // are visible.
    let picked = env.clauses_near(0.15, 12);
    let pushed = &picked[..2];

    let lol: Vec<Query> = (0..5)
        .map(|i| Query::new(format!("q{i}"), vec![picked[i].clone()]))
        .collect();
    let mol: Vec<Query> = (0..5)
        .map(|i| {
            Query::new(
                format!("q{i}"),
                vec![picked[i].clone(), picked[(i + 1) % 5].clone()],
            )
        })
        .collect();
    let hol: Vec<Query> = (0..5)
        .map(|i| {
            Query::new(
                format!("q{i}"),
                vec![
                    picked[0].clone(),
                    picked[1].clone(),
                    picked[2 + 2 * i].clone(),
                    picked[3 + 2 * i].clone(),
                ],
            )
        })
        .collect();

    vec![
        env.run("Lol", &lol, pushed),
        env.run("Mol", &mol, pushed),
        env.run("Hol", &hol, pushed),
    ]
}

/// Figs. 11 & 12: skewness workloads Lsk/Msk/Hsk — 5 queries × 2
/// predicates; 1 predicate pushed; the hot predicate appears in 1, 3,
/// and 5 queries respectively.
pub fn skewness_sweep(env: &MicroEnv) -> Vec<MicroOutcome> {
    let picked = env.clauses_near(0.2, 11);
    let hot = &picked[0];
    let extras = &picked[1..];
    let pushed = std::slice::from_ref(hot);

    // Lsk: hot appears once; every other slot distinct.
    let lsk: Vec<Query> = (0..5)
        .map(|i| {
            let clauses = if i == 0 {
                vec![hot.clone(), extras[0].clone()]
            } else {
                vec![extras[2 * i - 1].clone(), extras[2 * i].clone()]
            };
            Query::new(format!("q{i}"), clauses)
        })
        .collect();
    // Msk: hot in q0..q2.
    let msk: Vec<Query> = (0..5)
        .map(|i| {
            let clauses = if i < 3 {
                vec![hot.clone(), extras[i].clone()]
            } else {
                vec![extras[2 * i - 3].clone(), extras[2 * i - 2].clone()]
            };
            Query::new(format!("q{i}"), clauses)
        })
        .collect();
    // Hsk: hot in every query.
    let hsk: Vec<Query> = (0..5)
        .map(|i| Query::new(format!("q{i}"), vec![hot.clone(), extras[i].clone()]))
        .collect();

    vec![
        env.run("Lsk", &lsk, pushed),
        env.run("Msk", &msk, pushed),
        env.run("Hsk", &hsk, pushed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> MicroEnv {
        MicroEnv::new(ExperimentScale::tiny())
    }

    #[test]
    fn selectivity_controls_loading_ratio() {
        let env = env();
        let rows = selectivity_sweep(&env);
        assert_eq!(rows.len(), 3);
        // Every configuration covers all 5 queries, so partial loading
        // engages everywhere.
        for r in &rows {
            assert_eq!(r.covered_queries, 5, "{}", r.label);
            assert!(
                r.loading_ratio < 1.0,
                "{}: ratio {}",
                r.label,
                r.loading_ratio
            );
        }
        // Lower selectivity → lower loading ratio (paper Fig. 7).
        assert!(
            rows[0].loading_ratio > rows[1].loading_ratio
                && rows[1].loading_ratio > rows[2].loading_ratio,
            "ratios: {} {} {}",
            rows[0].loading_ratio,
            rows[1].loading_ratio,
            rows[2].loading_ratio
        );
    }

    #[test]
    fn overlap_controls_partial_loading() {
        let env = env();
        let rows = overlap_sweep(&env);
        // Lol/Mol leave uncovered queries → full loading; Hol covers
        // everything → drastic drop (paper Fig. 9).
        assert!((rows[0].loading_ratio - 1.0).abs() < 1e-9, "Lol loads all");
        assert!((rows[1].loading_ratio - 1.0).abs() < 1e-9, "Mol loads all");
        assert!(
            rows[2].loading_ratio < 0.5,
            "Hol ratio {}",
            rows[2].loading_ratio
        );
        // Coverage counts mirror the paper's narrative.
        assert_eq!(rows[0].covered_queries, 2);
        assert_eq!(rows[1].covered_queries, 3);
        assert_eq!(rows[2].covered_queries, 5);
    }

    #[test]
    fn skewness_controls_coverage() {
        let env = env();
        let rows = skewness_sweep(&env);
        assert_eq!(rows[0].covered_queries, 1);
        assert_eq!(rows[1].covered_queries, 3);
        assert_eq!(rows[2].covered_queries, 5);
        // Lsk's counts are perfectly uniform → factor exactly 0.
        assert_eq!(rows[0].skew_factor, 0.0);
        assert!(
            rows[2].skew_factor > 1.0,
            "Hsk factor {}",
            rows[2].skew_factor
        );
        // Only Hsk partially loads (paper Fig. 11).
        assert!((rows[0].loading_ratio - 1.0).abs() < 1e-9);
        assert!((rows[1].loading_ratio - 1.0).abs() < 1e-9);
        assert!(
            rows[2].loading_ratio < 1.0,
            "Hsk ratio {}",
            rows[2].loading_ratio
        );
    }
}
