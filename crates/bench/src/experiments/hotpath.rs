//! Hot-path micro suite: every optimized kernel measured against its
//! scalar reference in the same process, medians appended to
//! `BENCH_hotpath.json` (see [`crate::trajectory`]).
//!
//! The suite's portability trick: the *gate* never compares absolute
//! nanoseconds across machines. Each row records the optimized
//! median, the in-run scalar-reference median, and their ratio
//! (`speedup`); CI compares ratios against the committed baseline's
//! ratios, so a slower runner shifts both sides equally.
//!
//! Optimized and baseline timings are **interleaved** (the
//! `BENCH_service.json` telemetry-overhead measurement established the
//! idiom): machine-load drift lands on both sides instead of biasing
//! whichever ran second, and medians shrug off outliers.

use crate::experiments::datasets::{ndjson, ExperimentScale};
use ciao_bitvec::BitVec;
use ciao_client::{Finder, ParallelPrefilter, Prefilter};
use ciao_columnar::{Schema, TableBuilder};
use ciao_datagen::Dataset;
use ciao_engine::{scan_count, ScanOptions};
use ciao_json::RecordChunk;
use ciao_predicate::{compile_clause, parse_clause, parse_query, ClausePattern};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One measured kernel: optimized median vs in-run scalar baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathRow {
    /// Row id, stable across runs (the gate joins on it).
    pub name: String,
    /// Kernel family ("search", "prefilter", "bitvec", "columnar",
    /// "parallel").
    pub group: String,
    /// Median wall-clock of the optimized path, nanoseconds.
    pub median_ns: f64,
    /// Median wall-clock of the scalar reference, nanoseconds.
    pub baseline_ns: f64,
    /// `baseline_ns / median_ns` — the machine-portable number.
    pub speedup: f64,
    /// Bytes the optimized path touched per second, MB/s.
    pub throughput_mb_s: f64,
    /// Whether CI's perf gate enforces this row. Rows whose speedup
    /// depends on core count (shard scaling) are recorded but not
    /// gated, so a 1-core runner cannot fail the build on topology.
    pub gated: bool,
}

/// Interleaved timing iterations; odd so the median is a real sample.
pub const MEASURE_ITERS: usize = 9;

/// Times two closures interleaved for [`MEASURE_ITERS`] rounds (after
/// one discarded warm-up each) and returns `(optimized, baseline)`
/// median nanoseconds. Closures return a checksum so the work cannot
/// be optimized away.
pub fn interleaved_median_ns(
    mut optimized: impl FnMut() -> u64,
    mut baseline: impl FnMut() -> u64,
) -> (f64, f64) {
    fn time_one(f: &mut impl FnMut() -> u64) -> f64 {
        let t = Instant::now();
        black_box(f());
        t.elapsed().as_secs_f64() * 1e9
    }
    black_box(optimized());
    black_box(baseline());
    let mut opt = Vec::with_capacity(MEASURE_ITERS);
    let mut base = Vec::with_capacity(MEASURE_ITERS);
    for _ in 0..MEASURE_ITERS {
        opt.push(time_one(&mut optimized));
        base.push(time_one(&mut baseline));
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    (median(&mut opt), median(&mut base))
}

fn row(
    name: &str,
    group: &str,
    (median_ns, baseline_ns): (f64, f64),
    bytes: usize,
    gated: bool,
) -> HotpathRow {
    HotpathRow {
        name: name.to_owned(),
        group: group.to_owned(),
        median_ns,
        baseline_ns,
        speedup: baseline_ns / median_ns.max(1.0),
        throughput_mb_s: bytes as f64 / (median_ns.max(1.0) / 1e9) / 1e6,
        gated,
    }
}

/// Shared inputs: one WinLog stream reused by every row.
pub struct HotpathEnv {
    text: String,
    chunk: RecordChunk,
    keywords: Vec<String>,
}

impl HotpathEnv {
    /// Materializes the environment at a scale.
    pub fn new(scale: ExperimentScale) -> HotpathEnv {
        let text = ndjson(Dataset::WinLog, scale);
        let chunk = RecordChunk::from_ndjson(&text);
        let keywords = ciao_datagen::text::keyword_pool(64);
        HotpathEnv {
            text,
            chunk,
            keywords,
        }
    }

    /// The raw NDJSON stream.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The stream parsed into one record chunk.
    pub fn chunk(&self) -> &RecordChunk {
        &self.chunk
    }

    /// A prefilter over `preds` LIKE clauses from the keyword pool.
    pub fn prefilter(&self, preds: usize) -> Prefilter {
        Prefilter::new(self.like_clauses(preds))
    }

    fn like_clauses(&self, n: usize) -> Vec<(u32, ClausePattern)> {
        // Spread picks across the pool so selectivities vary.
        let step = (self.keywords.len() / n).max(1);
        (0..n)
            .map(|i| {
                let kw = &self.keywords[(i * step) % self.keywords.len()];
                let clause = parse_clause(&format!(r#"info LIKE "%{kw}%""#)).unwrap();
                (i as u32, compile_clause(&clause).unwrap())
            })
            .collect()
    }
}

/// SWAR substring search vs the pure-Horspool reference: count every
/// occurrence of one keyword across the whole stream.
fn search_row(env: &HotpathEnv) -> HotpathRow {
    let hay = env.text.as_bytes();
    let finder = Finder::new(&env.keywords[env.keywords.len() / 2]);
    let count_with = |find: &dyn Fn(&[u8], usize) -> Option<usize>| {
        let mut n = 0u64;
        let mut at = 0usize;
        while let Some(hit) = find(hay, at) {
            n += 1;
            at = hit + 1;
        }
        n
    };
    let timings = interleaved_median_ns(
        || count_with(&|h, s| finder.find_from(h, s)),
        || count_with(&|h, s| finder.find_from_scalar(h, s)),
    );
    row("search/memmem_swar", "search", timings, hay.len(), true)
}

/// One-pass [`PatternSet`](ciao_client::PatternSet) chunk evaluation vs
/// the per-needle loop, at `preds` pushed predicates.
fn patternset_row(env: &HotpathEnv, preds: usize) -> HotpathRow {
    let pf = Prefilter::new(env.like_clauses(preds));
    let timings = interleaved_median_ns(
        || {
            pf.run_chunk(&env.chunk)
                .bitvecs
                .iter()
                .map(BitVec::count_ones)
                .sum::<usize>() as u64
        },
        || {
            pf.run_chunk_scalar(&env.chunk)
                .bitvecs
                .iter()
                .map(BitVec::count_ones)
                .sum::<usize>() as u64
        },
    );
    row(
        &format!("prefilter/patternset_preds{preds}"),
        "prefilter",
        timings,
        env.chunk.payload_bytes(),
        true,
    )
}

// Large enough (256 KiB of words per operand) that the accumulator
// does not just sit in L1: the fused kernel's one-pass traffic win is
// what the row measures, and it only exists past the cache.
const BITVEC_BITS: usize = 1 << 21;
const BITVEC_OPERANDS: usize = 8;

fn bitvec_inputs() -> Vec<BitVec> {
    (0..BITVEC_OPERANDS)
        .map(|k| BitVec::from_fn(BITVEC_BITS, |i| (i + k) % (k + 2) != 0))
        .collect()
}

/// Fused multi-operand AND vs the clone-then-fold composition.
fn bitvec_and_all_row() -> HotpathRow {
    let vecs = bitvec_inputs();
    let refs: Vec<&BitVec> = vecs.iter().collect();
    let timings = interleaved_median_ns(
        || BitVec::and_all(&refs).unwrap().count_ones() as u64,
        || {
            let mut acc = vecs[0].clone();
            for v in &vecs[1..] {
                acc.and_assign(v);
            }
            acc.count_ones() as u64
        },
    );
    row(
        "bitvec/and_all8",
        "bitvec",
        timings,
        BITVEC_BITS / 8 * BITVEC_OPERANDS,
        true,
    )
}

/// Popcount-without-materializing vs materialize-then-count.
fn bitvec_count_and_row() -> HotpathRow {
    let vecs = bitvec_inputs();
    let (a, b) = (&vecs[0], &vecs[1]);
    let timings = interleaved_median_ns(|| a.count_and(b) as u64, || a.and(b).count_ones() as u64);
    row("bitvec/count_and", "bitvec", timings, BITVEC_BITS / 4, true)
}

/// Dictionary zone maps: a `StrEq` probe for an absent value over a
/// low-cardinality column prunes every block instead of scanning rows.
fn columnar_zone_row(records: usize) -> HotpathRow {
    let recs: Vec<ciao_json::JsonValue> = (0..records)
        .map(|i| {
            ciao_json::parse(&format!(
                r#"{{"level":"L{}","seq":{},"msg":"unit {} reported state {}"}}"#,
                i % 4,
                i,
                i % 97,
                i % 13
            ))
            .unwrap()
        })
        .collect();
    let schema = Arc::new(Schema::infer(&recs).unwrap());
    let mut tb = TableBuilder::new(schema, &[]);
    for r in &recs {
        tb.push_record(r, &BTreeMap::new());
    }
    let table = tb.finish();
    let query = parse_query("probe", r#"level = "absent""#).unwrap();
    let bytes = records * 8; // order-of-magnitude cell traffic
    let timings = interleaved_median_ns(
        || scan_count(&table, &query, &ScanOptions::full().with_zone_maps()).rows_scanned as u64,
        || scan_count(&table, &query, &ScanOptions::full()).rows_scanned as u64,
    );
    row("columnar/dict_zone_prune", "columnar", timings, bytes, true)
}

/// Shard-scaling row: 2-worker parallel prefilter vs serial. Recorded
/// for the trajectory but **not gated** — on a 1-core runner the
/// "speedup" is pure coordination tax, which is not a regression.
fn parallel_row(env: &HotpathEnv) -> HotpathRow {
    let pairs = env.like_clauses(4);
    let serial = Prefilter::new(pairs.clone());
    let parallel = ParallelPrefilter::new(Prefilter::new(pairs), 2);
    let chunks = env.chunk.split(512);
    let timings = interleaved_median_ns(
        || {
            let mut stats = ciao_client::ClientStats::default();
            parallel.run_chunks(&chunks, &mut stats).len() as u64
        },
        || {
            chunks
                .iter()
                .map(|c| serial.run_chunk(c).records)
                .sum::<usize>() as u64
        },
    );
    row(
        "prefilter/parallel_x2",
        "parallel",
        timings,
        env.chunk.payload_bytes(),
        false,
    )
}

/// Runs the whole suite at a scale.
pub fn run(scale: ExperimentScale) -> Vec<HotpathRow> {
    let env = HotpathEnv::new(scale);
    let mut rows = vec![search_row(&env)];
    for preds in [2usize, 4, 8, 16] {
        rows.push(patternset_row(&env, preds));
    }
    rows.push(bitvec_and_all_row());
    rows.push(bitvec_count_and_row());
    rows.push(columnar_zone_row(scale.records.min(20_000)));
    rows.push(parallel_row(&env));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_rows_are_well_formed() {
        let scale = ExperimentScale {
            records: 400,
            queries: 1,
            sample: 100,
        };
        let rows = run(scale);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(r.median_ns > 0.0, "{}: zero median", r.name);
            assert!(r.baseline_ns > 0.0, "{}: zero baseline", r.name);
            assert!(r.speedup > 0.0, "{}: zero speedup", r.name);
            assert!(r.throughput_mb_s >= 0.0, "{}", r.name);
        }
        assert!(
            rows.iter().any(|r| !r.gated),
            "the shard-scaling row must be recorded ungated"
        );
        let names: std::collections::BTreeSet<_> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names.len(), rows.len(), "row names must be unique");
    }

    #[test]
    fn zone_prune_row_actually_prunes() {
        let r = columnar_zone_row(2_000);
        assert!(
            r.speedup > 1.0,
            "pruned scan should beat the full scan: {r:?}"
        );
    }
}
