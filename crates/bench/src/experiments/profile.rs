//! Beyond the paper: the query profiler end to end.
//!
//! Runs an `EXPLAIN ANALYZE` battery over the SQL statements on a
//! sharded YCSB pushdown service and reports what the profiler saw:
//! per-statement block pruning and row skipping straight from the
//! rendered analyze annotations' backing profile, the service's
//! [`WorkloadStats`] clause EWMAs after the battery, the slow-query
//! log (threshold zero here, so every statement lands), and the last
//! query's span tree exported as Chrome `trace_event` JSON — written
//! to disk and parsed back to prove the export is well-formed.

use super::datasets::ExperimentScale;
use ciao::PushdownPlan;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_predicate::parse_query;
use ciao_service::{Service, ServiceConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Env var overriding where the Chrome trace JSON is written.
pub const TRACE_PATH_ENV: &str = "CIAO_TRACE_JSON";

/// Default Chrome trace output path, relative to the working
/// directory (scratch output, not a committed trajectory).
pub const DEFAULT_TRACE_PATH: &str = "profile.trace.json";

/// One `EXPLAIN ANALYZE` statement's profile, read back from the
/// carried [`QueryProfile`](ciao_engine::QueryProfile).
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// The SELECT being analyzed (without the `EXPLAIN ANALYZE`).
    pub statement: String,
    /// Rows the statement matched before grouping/limits.
    pub rows_matched: u64,
    /// Columnar blocks the scan considered.
    pub blocks_total: u64,
    /// Blocks skipped wholesale by zone maps.
    pub blocks_pruned: u64,
    /// Rows skipped (zone-pruned blocks + skip-mask zeros).
    pub rows_skipped: u64,
    /// Parked raw records parsed by the fallback scan.
    pub parked_parsed: u64,
    /// `WHERE` clauses the profiler tracked for this statement.
    pub clauses: usize,
    /// End-to-end execution time, ms.
    pub exec_ms: f64,
}

/// One clause's workload statistics after the battery.
#[derive(Debug, Clone)]
pub struct ClauseRow {
    /// The clause text, as `EXPLAIN` renders it.
    pub text: String,
    /// Whether it ever rode a pushed bitvector.
    pub pushed: bool,
    /// Queries that contained it.
    pub queries_seen: u64,
    /// Frequency EWMA (fraction of recent queries containing it).
    pub frequency: f64,
    /// Selectivity EWMA over its evaluated rows, if ever observed.
    pub selectivity: Option<f64>,
}

/// The profiler battery's outcome.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// One row per analyzed statement, in battery order.
    pub rows: Vec<ProfileRow>,
    /// The workload collector's per-clause EWMAs after the battery.
    pub clauses: Vec<ClauseRow>,
    /// Entries in the slow-query log (threshold zero: every query).
    pub slow_queries: usize,
    /// Spans in the last query's trace (root + stages + shards).
    pub trace_spans: usize,
    /// Events in the written Chrome trace, counted by parsing the
    /// file back.
    pub trace_events: usize,
    /// Where the Chrome trace JSON landed.
    pub trace_path: PathBuf,
}

/// The Chrome trace output path: `$CIAO_TRACE_JSON` or
/// [`DEFAULT_TRACE_PATH`], relative to the working directory.
pub fn trace_output_path() -> PathBuf {
    std::env::var_os(TRACE_PATH_ENV)
        .map_or_else(|| PathBuf::from(DEFAULT_TRACE_PATH), PathBuf::from)
}

fn start_service(plan: PushdownPlan, ndjson: &str, shards: usize) -> Service {
    let schema = {
        let sample: Vec<_> = ndjson
            .lines()
            .take(2_000)
            .map(|r| ciao_json::parse(r).unwrap())
            .collect();
        Arc::new(ciao_columnar::Schema::infer(&sample).unwrap())
    };
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(shards)
            .with_workers(shards)
            .with_queue_capacity(64)
            // Zero threshold: the battery is the workload under test,
            // so every statement should land in the slow-query log.
            .with_slow_query_threshold(Duration::ZERO),
    );
    for chunk in RecordChunk::from_ndjson(ndjson).split(1024) {
        let filter = service.prefilter().run_chunk(&chunk);
        assert!(service.enqueue_wait(chunk, filter).is_enqueued());
    }
    service.drain();
    service
}

/// Writes `trace` to `path` and parses it back, returning the number
/// of `traceEvents`. Panics if the export is not valid JSON of the
/// Chrome `trace_event` shape — that is the point of the round trip.
pub fn write_and_validate_trace(trace: &ciao_telemetry::SpanTree, path: &PathBuf) -> usize {
    let json = trace.to_chrome_trace();
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    let parsed = ciao_json::parse(&json).expect("chrome trace export is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("chrome trace has a traceEvents array");
    assert!(
        events.iter().all(|e| e.has_key("name")
            && e.has_key("ph")
            && e.has_key("ts")
            && e.has_key("pid")
            && e.has_key("tid")),
        "every trace event carries name/ph/ts/pid/tid"
    );
    events.len()
}

/// Runs the `EXPLAIN ANALYZE` battery at the given scale on a
/// `shards`-shard pushdown service, then collects the profiler's
/// surfaces and writes the Chrome trace to [`trace_output_path`].
pub fn run(scale: ExperimentScale, shards: usize) -> ProfileReport {
    run_with_trace_path(scale, shards, trace_output_path())
}

/// [`run`] with an explicit trace destination (tests pass a temp path
/// instead of mutating the environment).
pub fn run_with_trace_path(
    scale: ExperimentScale,
    shards: usize,
    trace_path: PathBuf,
) -> ProfileReport {
    let sample = Dataset::Ycsb.generate(11, scale.sample);
    let ndjson = Dataset::Ycsb.generate_ndjson(12, scale.records);
    let queries = vec![
        parse_query("q0", "isActive = true").unwrap(),
        parse_query("q1", r#"age_group = "senior" AND isActive = true"#).unwrap(),
        parse_query("q2", r#"phone_country = "+44""#).unwrap(),
        parse_query("q3", "linear_score = 42").unwrap(),
    ];
    let cost = ciao_optimizer::CostModel::default_uncalibrated();
    let plan = PushdownPlan::build(&queries, &sample, &cost, 30.0).unwrap();
    let service = start_service(plan, &ndjson, shards);

    let mut rows = Vec::new();
    for stmt in super::sql::statements() {
        let analyzed = service
            .query_sql(&format!("EXPLAIN ANALYZE {stmt}"))
            .expect("battery statement analyzes");
        let p = &analyzed.profile;
        rows.push(ProfileRow {
            statement: stmt.to_owned(),
            rows_matched: p.total_matched(),
            blocks_total: p.blocks_total,
            blocks_pruned: p.blocks_pruned_zone + p.blocks_pruned_mask,
            rows_skipped: p.rows_skipped_zone + p.rows_skipped_mask,
            parked_parsed: p.parked_rows_parsed,
            clauses: p.clauses.len(),
            exec_ms: analyzed.metrics.elapsed.as_secs_f64() * 1e3,
        });
    }

    let workload = service.workload_stats();
    let clauses = workload
        .clauses()
        .iter()
        .map(|c| ClauseRow {
            text: c.text.clone(),
            pushed: c.pushed,
            queries_seen: c.queries_seen,
            frequency: c.frequency_ewma,
            selectivity: c.selectivity_ewma,
        })
        .collect();

    let trace = service
        .last_query_trace()
        .expect("telemetry on: every query leaves a trace");
    let trace_events = write_and_validate_trace(&trace, &trace_path);

    let report = ProfileReport {
        rows,
        clauses,
        slow_queries: service.slow_queries().len(),
        trace_spans: trace.spans().len(),
        trace_events,
        trace_path,
    };
    service.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_profiles_and_trace_round_trips() {
        let dir = std::env::temp_dir().join("ciao-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report =
            run_with_trace_path(ExperimentScale::tiny(), 2, dir.join("battery.trace.json"));

        assert_eq!(report.rows.len(), super::super::sql::statements().len());
        // The covered statements prune blocks and skip rows; every
        // statement's profile tracked at least its own clauses.
        assert!(report.rows[0].rows_skipped > 0, "{:?}", report.rows[0]);
        assert!(report.rows.iter().all(|r| r.blocks_total > 0));
        // Workload stats saw every battery statement; the pushed
        // clauses are marked as such.
        assert!(report.clauses.iter().any(|c| c.pushed));
        assert!(report.clauses.iter().all(|c| c.queries_seen > 0));
        // Zero threshold: the whole battery landed in the slow log.
        assert_eq!(report.slow_queries, report.rows.len());
        // The trace export wrote real spans and parsed back.
        assert!(report.trace_spans >= 4, "root + parse + plan + execute");
        assert_eq!(report.trace_events, report.trace_spans);
        std::fs::remove_file(&report.trace_path).ok();
    }
}
