//! Beyond the paper: throughput scaling of the sharded service.
//!
//! The paper's server loop is single-threaded; `ciao_service` shards
//! it. This experiment measures ingest throughput and query latency at
//! 1/2/4/8 shards against the one-`Server` baseline on the same
//! prefiltered chunk stream, and checks that every configuration
//! returns the baseline's counts. Client prefiltering is done **before
//! the clock starts** — the paper already measures that stage; here we
//! isolate what sharding buys the server side.

use super::datasets::ExperimentScale;
use ciao::{PushdownPlan, Server};
use ciao_client::ChunkFilterResult;
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_predicate::{parse_query, Query};
use ciao_service::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Human label ("server (single thread)" or "service ×N").
    pub label: String,
    /// Shard count (1 for the baseline server).
    pub shards: usize,
    /// Wall-clock seconds to ingest every chunk.
    pub ingest_s: f64,
    /// Records ingested per second.
    pub records_per_s: f64,
    /// Ingest speedup over the baseline row.
    pub speedup: f64,
    /// Mean per-query latency (ms) over the workload.
    pub query_ms: f64,
    /// Whether every query count matched the baseline.
    pub counts_ok: bool,
}

/// The environment both sides share: plan, schema, prefiltered chunks.
pub struct ServiceEnv {
    plan: PushdownPlan,
    schema: Arc<Schema>,
    chunks: Vec<(RecordChunk, ChunkFilterResult)>,
    queries: Vec<Query>,
    records: usize,
}

impl ServiceEnv {
    /// Builds the YCSB environment at the given scale.
    pub fn new(scale: ExperimentScale) -> ServiceEnv {
        let records = Dataset::Ycsb.generate(11, scale.sample);
        let ndjson = Dataset::Ycsb.generate_ndjson(12, scale.records);
        let queries = vec![
            parse_query("q0", "isActive = true").unwrap(),
            parse_query("q1", r#"age_group = "senior" AND isActive = true"#).unwrap(),
            parse_query("q2", r#"phone_country = "+44""#).unwrap(),
            parse_query("q3", "linear_score = 42").unwrap(),
        ];
        let plan = PushdownPlan::build(
            &queries,
            &records,
            &ciao_optimizer::CostModel::default_uncalibrated(),
            30.0,
        )
        .unwrap();
        let schema = Arc::new(Schema::infer(&records).unwrap());
        let prefilter = plan.prefilter();
        let chunks: Vec<_> = RecordChunk::from_ndjson(&ndjson)
            .split(1024)
            .into_iter()
            .map(|c| {
                let f = prefilter.run_chunk(&c);
                (c, f)
            })
            .collect();
        ServiceEnv {
            plan,
            schema,
            chunks,
            queries,
            records: scale.records,
        }
    }

    /// Total records in the chunk stream.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Ingests the whole stream into a fresh single-threaded `Server`
    /// (not yet finalized) — the baseline both the sweep and the
    /// Criterion benches compare against.
    pub fn baseline_server(&self) -> Server {
        let mut server = Server::new(self.plan.clone(), Arc::clone(&self.schema), 1024);
        for (chunk, filter) in &self.chunks {
            server.ingest(chunk, filter);
        }
        server
    }

    /// Ingests the whole stream into a fresh sharded service and
    /// drains it (the Criterion benches iterate exactly this).
    pub fn run_service_ingest(&self, shards: usize) -> Service {
        let service = Service::start(
            self.plan.clone(),
            Arc::clone(&self.schema),
            ServiceConfig::default()
                .with_shards(shards)
                .with_workers(shards)
                .with_queue_capacity(64),
        );
        for (chunk, filter) in &self.chunks {
            assert!(service
                .enqueue_wait(chunk.clone(), filter.clone())
                .is_enqueued());
        }
        service.drain();
        service
    }
}

/// Runs the sweep: baseline server, then 1/2/4/8-shard services.
pub fn run(scale: ExperimentScale, shard_counts: &[usize]) -> Vec<ServiceRow> {
    let env = ServiceEnv::new(scale);
    let mut rows = Vec::new();

    // Baseline: the paper's single-threaded server loop.
    let start = Instant::now();
    let mut server = env.baseline_server();
    server.finalize();
    let baseline_ingest = start.elapsed().as_secs_f64();

    let qstart = Instant::now();
    let truth: Vec<usize> = env
        .queries
        .iter()
        .map(|q| server.execute(q).count)
        .collect();
    let baseline_query_ms = qstart.elapsed().as_secs_f64() * 1e3 / env.queries.len() as f64;

    rows.push(ServiceRow {
        label: "server (single thread)".into(),
        shards: 1,
        ingest_s: baseline_ingest,
        records_per_s: env.records as f64 / baseline_ingest,
        speedup: 1.0,
        query_ms: baseline_query_ms,
        counts_ok: true,
    });

    for &shards in shard_counts {
        let start = Instant::now();
        let service = env.run_service_ingest(shards);
        let ingest_s = start.elapsed().as_secs_f64();

        let qstart = Instant::now();
        let counts: Vec<usize> = env.queries.iter().map(|q| service.query(q).count).collect();
        let query_ms = qstart.elapsed().as_secs_f64() * 1e3 / env.queries.len() as f64;
        service.shutdown();

        rows.push(ServiceRow {
            label: format!("service ×{shards}"),
            shards,
            ingest_s,
            records_per_s: env.records as f64 / ingest_s,
            speedup: baseline_ingest / ingest_s,
            query_ms,
            counts_ok: counts == truth,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_baseline_counts() {
        let rows = run(ExperimentScale::tiny(), &[1, 2]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.counts_ok), "{rows:?}");
        assert!(rows.iter().all(|r| r.records_per_s > 0.0));
    }
}
