//! Beyond the paper: throughput scaling of the sharded service.
//!
//! The paper's server loop is single-threaded; `ciao_service` shards
//! it. This experiment measures ingest throughput and query latency at
//! 1/2/4/8 shards against the one-`Server` baseline on the same
//! prefiltered chunk stream, and checks that every configuration
//! returns the baseline's counts. Client prefiltering is done **before
//! the clock starts** — the paper already measures that stage; here we
//! isolate what sharding buys the server side.

use super::datasets::ExperimentScale;
use ciao::{PushdownPlan, Server};
use ciao_client::ChunkFilterResult;
use ciao_columnar::Schema;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_predicate::{parse_query, Query};
use ciao_service::{Service, ServiceConfig};
use ciao_telemetry::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// How many times the query workload is replayed per configuration so
/// the latency quantiles have more than one sample per query.
pub const QUERY_REPEATS: usize = 5;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Human label ("server (single thread)" or "service ×N").
    pub label: String,
    /// Shard count (1 for the baseline server).
    pub shards: usize,
    /// Wall-clock seconds to ingest every chunk.
    pub ingest_s: f64,
    /// Records ingested per second.
    pub records_per_s: f64,
    /// Ingest speedup over the baseline row.
    pub speedup: f64,
    /// Mean per-query latency (ms) over the workload.
    pub query_ms: f64,
    /// p50 ingest-ack latency (µs): enqueue → ingested for the
    /// service, per-chunk synchronous ingest for the baseline.
    pub ingest_ack_p50_us: f64,
    /// p99 of the same distribution (µs).
    pub ingest_ack_p99_us: f64,
    /// p50 per-query latency (µs) over the replayed workload.
    pub query_p50_us: f64,
    /// p99 per-query latency (µs).
    pub query_p99_us: f64,
    /// Producer blocked time in `enqueue_wait` (ms; 0 for baseline).
    pub blocked_ms: f64,
    /// Chunks rejected with `QueueFull` (0 under `enqueue_wait`).
    pub rejected: u64,
    /// Whether every query count matched the baseline.
    pub counts_ok: bool,
    /// Records per shard (single entry for the baseline).
    pub shard_records: Vec<usize>,
}

fn us(nanos: u64) -> f64 {
    nanos as f64 / 1e3
}

/// The environment both sides share: plan, schema, prefiltered chunks.
pub struct ServiceEnv {
    plan: PushdownPlan,
    schema: Arc<Schema>,
    chunks: Vec<(RecordChunk, ChunkFilterResult)>,
    queries: Vec<Query>,
    records: usize,
}

impl ServiceEnv {
    /// Builds the YCSB environment at the given scale.
    pub fn new(scale: ExperimentScale) -> ServiceEnv {
        let records = Dataset::Ycsb.generate(11, scale.sample);
        let ndjson = Dataset::Ycsb.generate_ndjson(12, scale.records);
        let queries = vec![
            parse_query("q0", "isActive = true").unwrap(),
            parse_query("q1", r#"age_group = "senior" AND isActive = true"#).unwrap(),
            parse_query("q2", r#"phone_country = "+44""#).unwrap(),
            parse_query("q3", "linear_score = 42").unwrap(),
        ];
        let plan = PushdownPlan::build(
            &queries,
            &records,
            &ciao_optimizer::CostModel::default_uncalibrated(),
            30.0,
        )
        .unwrap();
        let schema = Arc::new(Schema::infer(&records).unwrap());
        let prefilter = plan.prefilter();
        let chunks: Vec<_> = RecordChunk::from_ndjson(&ndjson)
            .split(1024)
            .into_iter()
            .map(|c| {
                let f = prefilter.run_chunk(&c);
                (c, f)
            })
            .collect();
        ServiceEnv {
            plan,
            schema,
            chunks,
            queries,
            records: scale.records,
        }
    }

    /// Total records in the chunk stream.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The query workload every configuration replays.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Ingests the whole stream into a fresh single-threaded `Server`
    /// (not yet finalized) — the baseline both the sweep and the
    /// Criterion benches compare against.
    pub fn baseline_server(&self) -> Server {
        let mut server = Server::new(self.plan.clone(), Arc::clone(&self.schema), 1024);
        for (chunk, filter) in &self.chunks {
            server.ingest(chunk, filter);
        }
        server
    }

    /// Like [`ServiceEnv::baseline_server`], but records each chunk's
    /// synchronous ingest latency — the baseline's ingest-ack
    /// distribution for the trajectory rows.
    pub fn baseline_server_timed(&self) -> (Server, Histogram) {
        let ack = Histogram::new();
        let mut server = Server::new(self.plan.clone(), Arc::clone(&self.schema), 1024);
        for (chunk, filter) in &self.chunks {
            let start = Instant::now();
            server.ingest(chunk, filter);
            ack.record_duration(start.elapsed());
        }
        (server, ack)
    }

    /// Ingests the whole stream into a fresh sharded service and
    /// drains it (the Criterion benches iterate exactly this).
    pub fn run_service_ingest(&self, shards: usize) -> Service {
        self.run_service_ingest_with(shards, true)
    }

    /// [`ServiceEnv::run_service_ingest`] with an explicit telemetry
    /// switch — the overhead bench compares both settings on the same
    /// stream.
    pub fn run_service_ingest_with(&self, shards: usize, telemetry: bool) -> Service {
        self.run_service_ingest_configured(
            ServiceConfig::default()
                .with_shards(shards)
                .with_workers(shards)
                .with_queue_capacity(64)
                .with_telemetry(telemetry),
        )
    }

    /// Ingests the whole stream under an arbitrary service config —
    /// how the durability experiment attaches a write-ahead log to the
    /// same chunk stream the in-memory sweep measures.
    pub fn run_service_ingest_configured(&self, config: ServiceConfig) -> Service {
        let service = Service::start(self.plan.clone(), Arc::clone(&self.schema), config);
        for (chunk, filter) in &self.chunks {
            assert!(service
                .enqueue_wait(chunk.clone(), filter.clone())
                .is_enqueued());
        }
        service.drain();
        service
    }
}

/// Runs the sweep: baseline server, then 1/2/4/8-shard services. Each
/// configuration replays the query workload [`QUERY_REPEATS`] times so
/// the p50/p99 latencies rest on more than one sample per query; the
/// service rows read their ingest-ack/query distributions and blocked
/// time from the service's own telemetry.
pub fn run(scale: ExperimentScale, shard_counts: &[usize]) -> Vec<ServiceRow> {
    let env = ServiceEnv::new(scale);
    let mut rows = Vec::new();

    // Baseline: the paper's single-threaded server loop, with local
    // histograms standing in for the service's telemetry.
    let start = Instant::now();
    let (mut server, baseline_ack) = env.baseline_server_timed();
    server.finalize();
    let baseline_ingest = start.elapsed().as_secs_f64();

    let baseline_query = Histogram::new();
    let qstart = Instant::now();
    let mut truth: Vec<usize> = Vec::new();
    for round in 0..QUERY_REPEATS {
        for q in &env.queries {
            let t = Instant::now();
            let count = server.execute(q).count;
            baseline_query.record_duration(t.elapsed());
            if round == 0 {
                truth.push(count);
            }
        }
    }
    let executed = (env.queries.len() * QUERY_REPEATS) as f64;
    let baseline_query_ms = qstart.elapsed().as_secs_f64() * 1e3 / executed;

    rows.push(ServiceRow {
        label: "server (single thread)".into(),
        shards: 1,
        ingest_s: baseline_ingest,
        records_per_s: env.records as f64 / baseline_ingest,
        speedup: 1.0,
        query_ms: baseline_query_ms,
        ingest_ack_p50_us: us(baseline_ack.p50()),
        ingest_ack_p99_us: us(baseline_ack.p99()),
        query_p50_us: us(baseline_query.p50()),
        query_p99_us: us(baseline_query.p99()),
        blocked_ms: 0.0,
        rejected: 0,
        counts_ok: true,
        shard_records: vec![env.records],
    });

    for &shards in shard_counts {
        let start = Instant::now();
        let service = env.run_service_ingest(shards);
        let ingest_s = start.elapsed().as_secs_f64();

        let qstart = Instant::now();
        let mut counts: Vec<usize> = Vec::new();
        for round in 0..QUERY_REPEATS {
            for q in &env.queries {
                let count = service.query(q).count;
                if round == 0 {
                    counts.push(count);
                }
            }
        }
        let query_ms = qstart.elapsed().as_secs_f64() * 1e3 / executed;

        let t = service.telemetry().expect("sweep runs with telemetry on");
        let ack = t.ingest_ack_merged();
        let query_hist = t.query.detached_copy();
        let metrics = service.shutdown();

        rows.push(ServiceRow {
            label: format!("service ×{shards}"),
            shards,
            ingest_s,
            records_per_s: env.records as f64 / ingest_s,
            speedup: baseline_ingest / ingest_s,
            query_ms,
            ingest_ack_p50_us: us(ack.p50()),
            ingest_ack_p99_us: us(ack.p99()),
            query_p50_us: us(query_hist.p50()),
            query_p99_us: us(query_hist.p99()),
            blocked_ms: metrics.blocked.as_secs_f64() * 1e3,
            rejected: metrics.rejected_chunks,
            counts_ok: counts == truth,
            shard_records: metrics.shards.iter().map(|s| s.load.total()).collect(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_baseline_counts() {
        let rows = run(ExperimentScale::tiny(), &[1, 2]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.counts_ok), "{rows:?}");
        assert!(rows.iter().all(|r| r.records_per_s > 0.0));
        // Every row carries real latency distributions…
        for r in &rows {
            assert!(r.ingest_ack_p99_us >= r.ingest_ack_p50_us, "{r:?}");
            assert!(r.query_p99_us >= r.query_p50_us, "{r:?}");
            assert!(r.ingest_ack_p50_us > 0.0, "{r:?}");
        }
        // …and the per-shard record split covers the whole stream.
        let records = ExperimentScale::tiny().records;
        for r in &rows {
            assert_eq!(r.shard_records.iter().sum::<usize>(), records, "{r:?}");
            assert_eq!(r.shard_records.len(), r.shards);
        }
    }
}
