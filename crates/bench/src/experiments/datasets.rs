//! Experiment scale control and dataset materialization.

use ciao_datagen::Dataset;

/// How big each experiment's dataset is.
///
/// The default (`records = 30_000`) keeps the full `repro all` run in
/// the minutes range. Set `CIAO_SCALE_RECORDS` to override from the
/// environment, e.g. `CIAO_SCALE_RECORDS=200000 cargo run --bin repro`.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Records per dataset.
    pub records: usize,
    /// Queries per end-to-end workload (paper: 200).
    pub queries: usize,
    /// Planning sample size.
    pub sample: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        let records = std::env::var("CIAO_SCALE_RECORDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(30_000);
        let queries = std::env::var("CIAO_SCALE_QUERIES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(50);
        ExperimentScale {
            records,
            queries,
            sample: 2_000,
        }
    }
}

impl ExperimentScale {
    /// A small scale for unit/integration tests.
    pub fn tiny() -> ExperimentScale {
        ExperimentScale {
            records: 4_000,
            queries: 20,
            sample: 800,
        }
    }
}

/// Materializes a dataset as NDJSON at the given scale (deterministic
/// per dataset).
pub fn ndjson(dataset: Dataset, scale: ExperimentScale) -> String {
    let seed = match dataset {
        Dataset::Yelp => 101,
        Dataset::WinLog => 202,
        Dataset::Ycsb => 303,
    };
    dataset.generate_ndjson(seed, scale.records)
}

/// The per-dataset budget sweeps of Figs. 3–5 (µs per record).
pub fn budget_sweep(dataset: Dataset) -> &'static [f64] {
    match dataset {
        Dataset::WinLog => &[0.0, 1.0, 3.0, 5.0, 7.0, 9.0],
        Dataset::Yelp => &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0],
        Dataset::Ycsb => &[0.0, 25.0, 50.0, 75.0, 100.0, 125.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        let t = ExperimentScale::tiny();
        assert!(t.records < ExperimentScale::default().records);
        assert!(t.sample <= t.records);
    }

    #[test]
    fn sweeps_start_at_zero() {
        for ds in Dataset::all() {
            let sweep = budget_sweep(ds);
            assert_eq!(sweep[0], 0.0, "{ds} sweep must include the baseline");
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ndjson_materializes() {
        let text = ndjson(
            Dataset::WinLog,
            ExperimentScale {
                records: 10,
                queries: 1,
                sample: 5,
            },
        );
        assert_eq!(text.lines().count(), 10);
    }
}
