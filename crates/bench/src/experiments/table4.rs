//! Table IV: cost-model calibration R² across hardware platforms.
//!
//! The three physical machines are simulated by
//! [`ciao_client::HardwareProfile`]s (see DESIGN.md's substitution
//! table); the calibration procedure itself is the paper's: 100 random
//! predicates, measure mean per-record cost and selectivity for each,
//! fit the §V-D model by multivariate linear regression, report R².

use ciao_client::HardwareProfile;
use ciao_optimizer::{CalibrationSample, CostModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Table IV row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Platform name.
    pub platform: String,
    /// Simulated hardware description.
    pub hardware: String,
    /// R² of the fitted cost model.
    pub r_squared: f64,
    /// The paper's reported R² for the corresponding platform.
    pub paper_r_squared: f64,
}

fn hardware_blurb(p: &HardwareProfile) -> String {
    format!(
        "noise ±{:.0}%, stalls {:.1}%",
        p.noise_frac * 100.0,
        p.stall_prob * 100.0
    )
}

/// Calibrates one profile exactly the way §VII-F describes.
pub fn calibrate(profile: &HardwareProfile, predicates: usize, seed: u64) -> CostModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<CalibrationSample> = (0..predicates)
        .map(|_| {
            let pattern_len = rng.gen_range(3.0..30.0f64);
            let record_len = rng.gen_range(80.0..1500.0f64);
            let selectivity = rng.gen_range(0.0..1.0f64);
            // One timing session per predicate (as §VII-F records "the
            // time cost … for each predicate"): hypervisor stalls hit
            // the whole session, so they are NOT averaged away.
            let measured = profile.measure(pattern_len, record_len, selectivity, &mut rng);
            CalibrationSample {
                pattern_len,
                record_len,
                selectivity,
                measured_micros: measured,
            }
        })
        .collect();
    CostModel::fit(&samples).expect("calibration is well-conditioned")
}

/// Runs the Table IV experiment.
pub fn run(seed: u64) -> Vec<Table4Row> {
    let paper = [0.897, 0.666, 0.978];
    HardwareProfile::table4_platforms()
        .iter()
        .zip(paper)
        .map(|(profile, paper_r2)| {
            let model = calibrate(profile, 100, seed);
            Table4Row {
                platform: profile.name.clone(),
                hardware: hardware_blurb(profile),
                r_squared: model.r_squared,
                paper_r_squared: paper_r2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let rows = run(99);
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.platform == n).unwrap().r_squared;
        let local = by_name("Local Server");
        let cloud = by_name("Alibaba Cloud");
        let pku = by_name("PKU Weiming");
        assert!(pku > local, "pku {pku} vs local {local}");
        assert!(local > cloud, "local {local} vs cloud {cloud}");
        // Rough magnitudes: bare metal fits well, the cloud VM poorly.
        assert!(pku > 0.9);
        assert!(cloud < 0.9);
    }
}
