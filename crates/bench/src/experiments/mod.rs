//! One module per paper experiment group.

pub mod ablation;
pub mod datasets;
pub mod durability;
pub mod end_to_end;
pub mod fig6;
pub mod hotpath;
pub mod micro;
pub mod profile;
pub mod service;
pub mod sql;
pub mod table4;
pub mod tables;
