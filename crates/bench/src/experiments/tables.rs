//! Tables I–III: the paper's descriptive tables, regenerated from the
//! living code (so drift between docs and implementation is caught).

use ciao_datagen::Dataset;
use ciao_predicate::{compile_simple, SimplePredicate};
use ciao_workload::{build_pool, predicate_counts, skewness_factor, WorkloadConfig};

/// One Table I row: a supported predicate with its compiled pattern.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Predicate kind label.
    pub kind: &'static str,
    /// Example predicate (paper's examples).
    pub example: String,
    /// The compiled pattern string(s).
    pub pattern: String,
}

/// Regenerates Table I from the real compiler.
pub fn table1() -> Vec<Table1Row> {
    let examples: [(&'static str, SimplePredicate); 4] = [
        (
            "Exact String Match",
            SimplePredicate::StrEq {
                key: "name".into(),
                value: "Bob".into(),
            },
        ),
        (
            "Substring Match",
            SimplePredicate::StrContains {
                key: "text".into(),
                needle: "delicious".into(),
            },
        ),
        (
            "Key-Presence Match",
            SimplePredicate::NotNull {
                key: "email".into(),
            },
        ),
        (
            "Key-Value Match",
            SimplePredicate::IntEq {
                key: "age".into(),
                value: 10,
            },
        ),
    ];
    examples
        .into_iter()
        .map(|(kind, pred)| {
            let pattern = compile_simple(&pred).expect("Table I predicates are pushable");
            Table1Row {
                kind,
                example: pred.to_string(),
                pattern: pattern.to_string(),
            }
        })
        .collect()
}

/// One Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Template text.
    pub template: &'static str,
    /// Candidate count.
    pub candidates: usize,
}

/// Regenerates Table II from the template registry.
pub fn table2() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for ds in [Dataset::Yelp, Dataset::WinLog, Dataset::Ycsb] {
        for t in ciao_workload::template_summaries(ds) {
            rows.push(Table2Row {
                dataset: ds.name(),
                template: t.template,
                candidates: t.candidates,
            });
        }
    }
    rows
}

/// One Table III row, measured from actually generated workloads.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Workload label (A/B/C).
    pub workload: char,
    /// Total number of predicates across all queries.
    pub total_predicates: usize,
    /// Minimum predicates in one query.
    pub min_predicates: usize,
    /// Maximum predicates in one query.
    pub max_predicates: usize,
    /// Distribution label.
    pub distribution: String,
    /// Measured skewness factor.
    pub skewness: f64,
}

/// Regenerates Table III by generating the three presets (on the
/// Windows log pool, 200 queries as in the paper) and measuring them.
pub fn table3(seed: u64) -> Vec<Table3Row> {
    let pool = build_pool(Dataset::WinLog);
    WorkloadConfig::presets(Dataset::WinLog, seed)
        .into_iter()
        .map(|(label, cfg)| {
            let queries = cfg.generate(&pool);
            let counts: Vec<usize> = queries.iter().map(|q| q.simple_predicate_count()).collect();
            Table3Row {
                workload: label,
                total_predicates: counts.iter().sum(),
                min_predicates: *counts.iter().min().expect("non-empty"),
                max_predicates: *counts.iter().max().expect("non-empty"),
                distribution: cfg.kind.label(),
                skewness: skewness_factor(&predicate_counts(&queries)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].pattern.contains("\\\"Bob\\\"") || rows[0].pattern.contains("\"Bob\""));
        assert!(rows[1].pattern.contains("delicious"));
        assert!(rows[2].pattern.contains("email"));
        assert!(rows[3].pattern.contains("age") && rows[3].pattern.contains("10"));
    }

    #[test]
    fn table2_has_all_rows() {
        let rows = table2();
        assert_eq!(rows.len(), 8 + 6 + 9);
        let yelp_total: usize = rows
            .iter()
            .filter(|r| r.dataset == "Yelp Review")
            .map(|r| r.candidates)
            .sum();
        assert_eq!(yelp_total, 341);
    }

    #[test]
    fn table3_shapes() {
        let rows = table3(5);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // 200 queries at ~3 predicates each.
            assert!(
                r.total_predicates > 300 && r.total_predicates < 1000,
                "{r:?}"
            );
            assert!(r.min_predicates >= 1);
            assert!(r.max_predicates <= 15);
        }
        // A and B are Zipfian, C uniform.
        assert!(rows[0].distribution.contains("Zipf"));
        assert_eq!(rows[2].distribution, "Uniform");
    }
}
