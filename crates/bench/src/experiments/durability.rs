//! Beyond the paper: what durability costs the ingest ack.
//!
//! The CIAO pipeline acks a chunk the moment the queue takes it; the
//! storage layer makes that ack *mean* something by write-ahead-logging
//! the chunk first. This experiment replays the in-memory service
//! sweep's chunk stream under each [`SyncPolicy`] — memory-only (no
//! log), `Always` (fsync per ack), `EveryN` (amortized fsync), `Never`
//! (OS-paced writeback) — on the same shard count, and reports the
//! throughput and ack-latency overhead of each durability level, plus
//! a one-shot checkpoint cost. Every configuration must still answer
//! the query workload with identical counts: durability is allowed to
//! cost time, never answers.

use super::datasets::ExperimentScale;
use super::service::{ServiceEnv, ServiceRow, QUERY_REPEATS};
use ciao_service::{ServiceConfig, StorageConfig, SyncPolicy};
use ciao_storage::ScratchDir;
use std::time::Instant;

/// One durability configuration: the shared [`ServiceRow`] shape (so
/// the rows ride the existing bench trajectory schema) plus the
/// WAL-side counters the in-memory sweep has no equivalent for.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// The trajectory-schema row (label, throughput, latencies, ...).
    pub service: ServiceRow,
    /// WAL records appended (0 for memory-only).
    pub wal_appends: u64,
    /// `fsync` calls the append path issued.
    pub wal_syncs: u64,
    /// Wall-clock milliseconds for one end-of-ingest checkpoint
    /// (snapshots + manifest + WAL truncation); 0 for memory-only.
    pub checkpoint_ms: f64,
}

/// The sync policies compared, with their row labels.
fn variants(shards: usize) -> Vec<(String, Option<SyncPolicy>)> {
    vec![
        (format!("service ×{shards} (memory-only)"), None),
        (
            format!("service ×{shards} (wal: always)"),
            Some(SyncPolicy::Always),
        ),
        (
            format!("service ×{shards} (wal: every-8)"),
            Some(SyncPolicy::EveryN(8)),
        ),
        (
            format!("service ×{shards} (wal: never)"),
            Some(SyncPolicy::Never),
        ),
    ]
}

fn us(nanos: u64) -> f64 {
    nanos as f64 / 1e3
}

/// Runs the durability sweep at one shard count. The memory-only row
/// is the baseline: its ingest time defines `speedup = 1.0` and its
/// query counts define `counts_ok` for every durable row.
pub fn run(scale: ExperimentScale, shards: usize) -> Vec<DurabilityRow> {
    let env = ServiceEnv::new(scale);
    let mut rows: Vec<DurabilityRow> = Vec::new();
    let mut baseline_ingest = 0.0_f64;
    let mut truth: Vec<usize> = Vec::new();

    for (label, sync) in variants(shards) {
        // Each durable variant owns a fresh scratch directory, removed
        // when the row is done — runs never see each other's logs.
        let scratch = sync.map(|_| ScratchDir::new("bench-durability"));
        let mut config = ServiceConfig::default()
            .with_shards(shards)
            .with_workers(shards)
            .with_queue_capacity(64);
        if let (Some(dir), Some(sync)) = (&scratch, sync) {
            config = config.with_storage(StorageConfig::new(dir.path()).with_sync(sync));
        }

        let start = Instant::now();
        let service = env.run_service_ingest_configured(config);
        let ingest_s = start.elapsed().as_secs_f64();
        if rows.is_empty() {
            baseline_ingest = ingest_s;
        }

        let qstart = Instant::now();
        let mut counts: Vec<usize> = Vec::new();
        for round in 0..QUERY_REPEATS {
            for q in env.queries() {
                let count = service.query(q).count;
                if round == 0 {
                    counts.push(count);
                }
            }
        }
        let executed = (env.queries().len() * QUERY_REPEATS) as f64;
        let query_ms = qstart.elapsed().as_secs_f64() * 1e3 / executed;
        if rows.is_empty() {
            truth = counts.clone();
        }

        // Capture the append-path counters before the checkpoint: the
        // checkpoint's own rotation fsync belongs to `checkpoint_ms`,
        // not to the per-ack sync cadence under comparison.
        let (wal_appends, wal_syncs) = service
            .durability()
            .map_or((0, 0), |d| (d.wal_appends, d.wal_syncs));
        let cstart = Instant::now();
        let checkpointed = service.checkpoint().is_some();
        let checkpoint_ms = if checkpointed {
            cstart.elapsed().as_secs_f64() * 1e3
        } else {
            0.0
        };

        let t = service.telemetry().expect("sweep runs with telemetry on");
        let ack = t.ingest_ack_merged();
        let query_hist = t.query.detached_copy();
        let metrics = service.shutdown();

        rows.push(DurabilityRow {
            service: ServiceRow {
                label,
                shards,
                ingest_s,
                records_per_s: env.records() as f64 / ingest_s,
                speedup: baseline_ingest / ingest_s,
                query_ms,
                ingest_ack_p50_us: us(ack.p50()),
                ingest_ack_p99_us: us(ack.p99()),
                query_p50_us: us(query_hist.p50()),
                query_p99_us: us(query_hist.p99()),
                blocked_ms: metrics.blocked.as_secs_f64() * 1e3,
                rejected: metrics.rejected_chunks,
                counts_ok: counts == truth,
                shard_records: metrics.shards.iter().map(|s| s.load.total()).collect(),
            },
            wal_appends,
            wal_syncs,
            checkpoint_ms,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_sweep_preserves_answers_and_counts_wal_work() {
        let rows = run(ExperimentScale::tiny(), 2);
        assert_eq!(rows.len(), 4);
        assert!(
            rows.iter().all(|r| r.service.counts_ok),
            "durability must never change answers: {rows:?}"
        );

        let chunks = rows[1].wal_appends;
        assert!(chunks > 0, "durable rows log every chunk");
        // Every durable variant logs the identical stream...
        assert!(rows[1..].iter().all(|r| r.wal_appends == chunks));
        // ...and the sync cadence is exactly what each policy promises
        // on the append path: one fsync per append, one per 8 appends,
        // none at all.
        assert_eq!(rows[1].wal_syncs, chunks);
        assert_eq!(rows[2].wal_syncs, chunks / 8);
        assert_eq!(rows[3].wal_syncs, 0);

        // Memory-only has no log and no checkpoint.
        assert_eq!(rows[0].wal_appends, 0);
        assert_eq!(rows[0].checkpoint_ms, 0.0);
        assert!(rows[1..].iter().all(|r| r.checkpoint_ms > 0.0));
    }
}
