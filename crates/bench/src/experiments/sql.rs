//! Beyond the paper: the SQL frontend over the sharded service.
//!
//! Runs a battery of `SELECT` statements (projections, aggregates,
//! `GROUP BY`, `ORDER BY`, `LIMIT`) twice over the same YCSB records:
//! once on a multi-shard service with a real pushdown plan, once on a
//! single-shard zero-budget service that loads everything columnar —
//! the full-scan oracle. Answers must be bit-identical; the covered
//! statements additionally show the data-skipping machinery (pruned
//! blocks, skipped rows) working on the aggregate path, and the
//! per-stage parse/plan/exec latencies come straight from the
//! service's own telemetry histograms.

use super::datasets::ExperimentScale;
use ciao::PushdownPlan;
use ciao_datagen::Dataset;
use ciao_json::RecordChunk;
use ciao_predicate::parse_query;
use ciao_service::{Service, ServiceConfig};
use std::sync::Arc;

/// One SQL statement's measured execution on the pushdown service.
#[derive(Debug, Clone)]
pub struct SqlRow {
    /// The statement text.
    pub statement: String,
    /// Result rows returned.
    pub rows: usize,
    /// Whether ≥1 `WHERE` clause rode a pushed bitvector skip mask.
    pub covered: bool,
    /// Columnar blocks skipped wholesale by zone maps.
    pub blocks_pruned: usize,
    /// Rows skipped (pruned blocks + skip-mask zeros).
    pub rows_skipped: usize,
    /// End-to-end execution time (fan-out + merge + finalize), ms.
    pub exec_ms: f64,
    /// Whether columns and rows match the full-scan oracle exactly.
    pub matches_oracle: bool,
}

/// The battery's outcome: per-statement rows plus the pushdown
/// service's per-stage latency medians (µs).
#[derive(Debug, Clone)]
pub struct SqlReport {
    /// One row per statement, in battery order.
    pub rows: Vec<SqlRow>,
    /// Median lex+parse time.
    pub parse_p50_us: f64,
    /// Median analyze+plan time.
    pub plan_p50_us: f64,
    /// Median plan execution time.
    pub exec_p50_us: f64,
}

/// The SQL battery. The first statements hit pushed clauses
/// (`isActive = true`, `age_group = "senior" AND isActive = true`,
/// `phone_country = "+44"`, `linear_score = 42` are the plan's query
/// workload); the rest exercise uncovered scans, grouping, ordering,
/// and limits.
pub fn statements() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) FROM ycsb WHERE isActive = true",
        "SELECT COUNT(*), AVG(linear_score) FROM ycsb WHERE isActive = true",
        "SELECT COUNT(*) FROM ycsb WHERE age_group = 'senior' AND isActive = true",
        "SELECT COUNT(*) FROM ycsb WHERE linear_score = 42",
        "SELECT age_group, COUNT(*) AS n, AVG(linear_score) \
         FROM ycsb WHERE isActive = true GROUP BY age_group ORDER BY n DESC",
        "SELECT phone_country, MIN(linear_score), MAX(linear_score) \
         FROM ycsb GROUP BY phone_country ORDER BY phone_country",
        "SELECT age_group, SUM(weighted_score) \
         FROM ycsb WHERE phone_country = '+44' GROUP BY age_group ORDER BY age_group",
        "SELECT age_group, linear_score FROM ycsb WHERE linear_score = 42 \
         ORDER BY age_group, linear_score LIMIT 10",
    ]
}

fn start_service(plan: PushdownPlan, ndjson: &str, shards: usize) -> Service {
    let schema = {
        let sample: Vec<_> = ndjson
            .lines()
            .take(2_000)
            .map(|r| ciao_json::parse(r).unwrap())
            .collect();
        Arc::new(ciao_columnar::Schema::infer(&sample).unwrap())
    };
    let service = Service::start(
        plan,
        schema,
        ServiceConfig::default()
            .with_shards(shards)
            .with_workers(shards)
            .with_queue_capacity(64),
    );
    for chunk in RecordChunk::from_ndjson(ndjson).split(1024) {
        let filter = service.prefilter().run_chunk(&chunk);
        assert!(service.enqueue_wait(chunk, filter).is_enqueued());
    }
    service.drain();
    service
}

/// Runs the battery at the given scale on a `shards`-shard pushdown
/// service vs the single-shard zero-budget oracle.
pub fn run(scale: ExperimentScale, shards: usize) -> SqlReport {
    let sample = Dataset::Ycsb.generate(11, scale.sample);
    let ndjson = Dataset::Ycsb.generate_ndjson(12, scale.records);
    let queries = vec![
        parse_query("q0", "isActive = true").unwrap(),
        parse_query("q1", r#"age_group = "senior" AND isActive = true"#).unwrap(),
        parse_query("q2", r#"phone_country = "+44""#).unwrap(),
        parse_query("q3", "linear_score = 42").unwrap(),
    ];
    let cost = ciao_optimizer::CostModel::default_uncalibrated();
    let pushed_plan = PushdownPlan::build(&queries, &sample, &cost, 30.0).unwrap();
    let oracle_plan = PushdownPlan::build(&queries, &sample, &cost, 0.0).unwrap();
    assert!(oracle_plan.is_empty(), "zero budget pushes nothing");

    let service = start_service(pushed_plan, &ndjson, shards);
    let oracle = start_service(oracle_plan, &ndjson, 1);

    let mut rows = Vec::new();
    for stmt in statements() {
        let expected = oracle.query_sql(stmt).expect("oracle executes battery");
        let got = service.query_sql(stmt).expect("service executes battery");
        rows.push(SqlRow {
            statement: stmt.to_owned(),
            rows: got.rows.len(),
            covered: got.metrics.used_skipping,
            blocks_pruned: got.metrics.table_scan.blocks_pruned,
            rows_skipped: got.metrics.table_scan.rows_skipped,
            exec_ms: got.metrics.elapsed.as_secs_f64() * 1e3,
            matches_oracle: got.columns == expected.columns && got.rows == expected.rows,
        });
    }

    let t = service.telemetry().expect("telemetry on by default");
    let report = SqlReport {
        rows,
        parse_p50_us: t.sql_parse.p50() as f64 / 1e3,
        plan_p50_us: t.sql_plan.p50() as f64 / 1e3,
        exec_p50_us: t.sql_exec.p50() as f64 / 1e3,
    };
    service.shutdown();
    oracle.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_matches_full_scan_oracle() {
        let report = run(ExperimentScale::tiny(), 2);
        assert_eq!(report.rows.len(), statements().len());
        for row in &report.rows {
            assert!(row.matches_oracle, "diverged from oracle: {row:?}");
        }
        // The workload statements ride pushed clauses and skip rows.
        assert!(report.rows[0].covered, "{:?}", report.rows[0]);
        assert!(report.rows[0].rows_skipped > 0, "{:?}", report.rows[0]);
        // Ungrouped aggregates return one row; the LIMIT caps at 10.
        assert_eq!(report.rows[0].rows, 1);
        assert!(report.rows[7].rows <= 10);
        assert!(report.exec_p50_us > 0.0);
    }
}
