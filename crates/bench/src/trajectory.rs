//! `BENCH_service.json` / `BENCH_hotpath.json` — benchmark
//! trajectories.
//!
//! Every `repro -- service` run (and the Criterion overhead bench)
//! appends one [`BenchRun`] to a JSON file, so performance history
//! accumulates across commits instead of vanishing with the terminal;
//! `repro -- micro` does the same for the hot-path kernel suite
//! ([`HotpathRun`]). Each document's shape is pinned by a checked-in
//! schema file (a JSON-Schema subset) and [`validate`] enforces it —
//! CI validates both emitted files on every push, and the perf gate
//! (`repro -- check-perf`) compares the hotpath file against the
//! committed baseline.

use crate::experiments::hotpath::HotpathRow;
use crate::experiments::service::ServiceRow;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::path::{Path, PathBuf};

/// Current trajectory document version.
pub const SCHEMA_VERSION: i64 = 1;
/// Default output file, relative to the workspace root.
pub const DEFAULT_PATH: &str = "BENCH_service.json";
/// Default schema file, relative to the workspace root.
pub const DEFAULT_SCHEMA_PATH: &str = "schemas/BENCH_service.schema.json";
/// Env var overriding the output path.
pub const PATH_ENV: &str = "CIAO_BENCH_JSON";
/// Env var overriding the schema path.
pub const SCHEMA_ENV: &str = "CIAO_BENCH_SCHEMA";
/// Default hot-path trajectory file, relative to the workspace root.
pub const DEFAULT_HOTPATH_PATH: &str = "BENCH_hotpath.json";
/// Default hot-path schema file, relative to the workspace root.
pub const DEFAULT_HOTPATH_SCHEMA_PATH: &str = "schemas/BENCH_hotpath.schema.json";
/// Env var overriding the hot-path output path.
pub const HOTPATH_PATH_ENV: &str = "CIAO_BENCH_HOTPATH_JSON";
/// Env var overriding the hot-path schema path.
pub const HOTPATH_SCHEMA_ENV: &str = "CIAO_BENCH_HOTPATH_SCHEMA";

/// The whole trajectory document: a version pin plus appended runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchTrajectory {
    /// Document format version ([`SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// All recorded runs, oldest first.
    pub runs: Vec<BenchRun>,
}

/// One benchmark invocation (a `repro -- service` sweep or a Criterion
/// overhead run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRun {
    /// `"repro"` for the sweep binary, `"bench"` for Criterion.
    pub source: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_s: u64,
    /// Records in the ingested stream.
    pub records: u64,
    /// `available_parallelism` on the host.
    pub cores: u64,
    /// Median ingest overhead of telemetry-on vs telemetry-off, in
    /// percent; `null` when the run did not measure it.
    pub telemetry_overhead_pct: Option<f64>,
    /// One row per measured configuration (baseline + shard counts).
    pub configs: Vec<ConfigRow>,
}

/// One measured configuration inside a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigRow {
    /// Human label ("server (single thread)", "service ×2", …).
    pub label: String,
    /// Shard count (1 for the baseline server).
    pub shards: u64,
    /// Wall-clock ingest seconds for the whole stream.
    pub ingest_s: f64,
    /// Ingest throughput.
    pub records_per_s: f64,
    /// Ingest speedup over the baseline row.
    pub speedup: f64,
    /// Mean per-query latency in milliseconds.
    pub query_ms: f64,
    /// p50 enqueue→ingested (baseline: per-chunk ingest) latency, µs.
    pub ingest_ack_p50_us: f64,
    /// p99 of the same distribution, µs.
    pub ingest_ack_p99_us: f64,
    /// p50 per-query latency, µs.
    pub query_p50_us: f64,
    /// p99 per-query latency, µs.
    pub query_p99_us: f64,
    /// Cumulative producer blocked time in `enqueue_wait`, ms.
    pub blocked_ms: f64,
    /// Chunks rejected with `QueueFull`.
    pub rejected: u64,
    /// Whether every query count matched the baseline.
    pub counts_ok: bool,
    /// Records that landed on each shard.
    pub shard_records: Vec<u64>,
}

impl BenchTrajectory {
    /// An empty trajectory at the current version.
    pub fn empty() -> BenchTrajectory {
        BenchTrajectory {
            schema_version: SCHEMA_VERSION,
            runs: Vec::new(),
        }
    }
}

/// The hot-path trajectory document (`BENCH_hotpath.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathTrajectory {
    /// Document format version ([`SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// All recorded runs, oldest first.
    pub runs: Vec<HotpathRun>,
}

/// One hot-path suite invocation (`repro -- micro` or the Criterion
/// `hotpath` bench).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathRun {
    /// `"repro"` for the sweep binary, `"bench"` for Criterion.
    pub source: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time_s: u64,
    /// Records in the generated stream the suite scanned.
    pub records: u64,
    /// `available_parallelism` on the host.
    pub cores: u64,
    /// One row per measured kernel.
    pub rows: Vec<HotpathRow>,
}

impl HotpathTrajectory {
    /// An empty hot-path trajectory at the current version.
    pub fn empty() -> HotpathTrajectory {
        HotpathTrajectory {
            schema_version: SCHEMA_VERSION,
            runs: Vec::new(),
        }
    }
}

/// Builds a hot-path run from suite rows, stamped with the current
/// time and this host's core count.
pub fn hotpath_run_from_rows(source: &str, records: usize, rows: Vec<HotpathRow>) -> HotpathRun {
    let unix_time_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    HotpathRun {
        source: source.to_owned(),
        unix_time_s,
        records: records as u64,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        rows,
    }
}

/// The hot-path output path: `$CIAO_BENCH_HOTPATH_JSON` (relative to
/// the working directory) or [`DEFAULT_HOTPATH_PATH`] anchored at the
/// workspace root.
pub fn hotpath_output_path() -> PathBuf {
    std::env::var_os(HOTPATH_PATH_ENV).map_or_else(|| anchored(DEFAULT_HOTPATH_PATH), PathBuf::from)
}

/// The hot-path schema path: `$CIAO_BENCH_HOTPATH_SCHEMA` (relative to
/// the working directory) or [`DEFAULT_HOTPATH_SCHEMA_PATH`] anchored
/// at the workspace root.
pub fn hotpath_schema_path() -> PathBuf {
    std::env::var_os(HOTPATH_SCHEMA_ENV)
        .map_or_else(|| anchored(DEFAULT_HOTPATH_SCHEMA_PATH), PathBuf::from)
}

/// Appends one run to the hot-path trajectory at `path` (creating it,
/// or starting fresh when the existing file does not parse) and writes
/// the updated document back. Returns the document as written.
pub fn append_hotpath_run(path: &Path, run: HotpathRun) -> std::io::Result<HotpathTrajectory> {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<HotpathTrajectory>(&text).ok())
        .unwrap_or_else(HotpathTrajectory::empty);
    doc.schema_version = SCHEMA_VERSION;
    doc.runs.push(run);
    let json = serde_json::to_string(&doc).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")?;
    Ok(doc)
}

/// Reads and parses a hot-path trajectory file.
pub fn read_hotpath(path: &Path) -> Result<HotpathTrajectory, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text)
        .map_err(|e| format!("{} is not a hot-path trajectory: {e}", path.display()))
}

impl From<&ServiceRow> for ConfigRow {
    fn from(r: &ServiceRow) -> ConfigRow {
        ConfigRow {
            label: r.label.clone(),
            shards: r.shards as u64,
            ingest_s: r.ingest_s,
            records_per_s: r.records_per_s,
            speedup: r.speedup,
            query_ms: r.query_ms,
            ingest_ack_p50_us: r.ingest_ack_p50_us,
            ingest_ack_p99_us: r.ingest_ack_p99_us,
            query_p50_us: r.query_p50_us,
            query_p99_us: r.query_p99_us,
            blocked_ms: r.blocked_ms,
            rejected: r.rejected,
            counts_ok: r.counts_ok,
            shard_records: r.shard_records.iter().map(|&n| n as u64).collect(),
        }
    }
}

/// Builds a run from sweep rows, stamped with the current time and
/// this host's core count.
pub fn run_from_rows(
    source: &str,
    records: usize,
    telemetry_overhead_pct: Option<f64>,
    rows: &[ServiceRow],
) -> BenchRun {
    let unix_time_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    BenchRun {
        source: source.to_owned(),
        unix_time_s,
        records: records as u64,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        telemetry_overhead_pct,
        configs: rows.iter().map(ConfigRow::from).collect(),
    }
}

/// The output path: `$CIAO_BENCH_JSON` (relative to the working
/// directory) or [`DEFAULT_PATH`] anchored at the workspace root.
pub fn output_path() -> PathBuf {
    std::env::var_os(PATH_ENV).map_or_else(|| anchored(DEFAULT_PATH), PathBuf::from)
}

/// The schema path: `$CIAO_BENCH_SCHEMA` (relative to the working
/// directory) or [`DEFAULT_SCHEMA_PATH`] anchored at the workspace
/// root.
pub fn schema_path() -> PathBuf {
    std::env::var_os(SCHEMA_ENV).map_or_else(|| anchored(DEFAULT_SCHEMA_PATH), PathBuf::from)
}

/// Resolves a workspace-relative default against the workspace root so
/// `repro` (cwd = invocation dir) and Criterion benches (cwd = the
/// crate's manifest dir) write the same file. Walks up from the
/// current directory to the nearest `Cargo.lock`; falls back to the
/// path as given when none is found.
fn anchored(default: &str) -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_default();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(default);
        }
        if !dir.pop() {
            return PathBuf::from(default);
        }
    }
}

/// Appends one run to the trajectory at `path` (creating it, or
/// starting fresh when the existing file does not parse) and writes
/// the updated document back. Returns the document as written.
pub fn append_run(path: &Path, run: BenchRun) -> std::io::Result<BenchTrajectory> {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<BenchTrajectory>(&text).ok())
        .unwrap_or_else(BenchTrajectory::empty);
    doc.schema_version = SCHEMA_VERSION;
    doc.runs.push(run);
    let json = serde_json::to_string(&doc).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")?;
    Ok(doc)
}

/// Validates `doc` against a JSON-Schema subset: `type` (a string or
/// a union array, including `"integer"`/`"null"`), `properties`,
/// `required`, and `items`. Returns every violation with its JSON
/// pointer path.
pub fn validate(doc: &Value, schema: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    validate_at(doc, schema, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Reads, parses, and validates the trajectory file against the
/// schema file; the error is a printable report.
pub fn validate_files(doc_path: &Path, schema_path: &Path) -> Result<(), String> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let doc: Value = serde_json::from_str(&read(doc_path)?)
        .map_err(|e| format!("{} is not valid JSON: {e:?}", doc_path.display()))?;
    let schema: Value = serde_json::from_str(&read(schema_path)?)
        .map_err(|e| format!("{} is not valid JSON: {e:?}", schema_path.display()))?;
    validate(&doc, &schema).map_err(|errors| {
        format!(
            "{} violates {}:\n  {}",
            doc_path.display(),
            schema_path.display(),
            errors.join("\n  ")
        )
    })
}

fn type_matches(value: &Value, ty: &str) -> bool {
    match ty {
        "object" => value.as_object().is_some(),
        "array" => value.as_array().is_some(),
        "string" => value.as_str().is_some(),
        "boolean" => value.as_bool().is_some(),
        "null" => value.is_null(),
        "number" => value.as_f64().is_some(),
        "integer" => value.as_i64().is_some(),
        _ => false,
    }
}

fn validate_at(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            Value::String(s) => vec![s.as_str()],
            Value::Array(names) => names.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        if !allowed.iter().any(|t| type_matches(value, t)) {
            errors.push(format!("{path}: expected type {allowed:?}"));
            return; // structural checks below would only cascade
        }
    }
    if let Some(required) = schema.get("required").and_then(Value::as_array) {
        for name in required.iter().filter_map(Value::as_str) {
            if value.get(name).is_none() {
                errors.push(format!("{path}: missing required property `{name}`"));
            }
        }
    }
    if let Some(props) = schema.get("properties").and_then(Value::as_object) {
        for (name, sub) in props {
            if let Some(v) = value.get(name) {
                validate_at(v, sub, &format!("{path}.{name}"), errors);
            }
        }
    }
    if let (Some(items), Some(elems)) = (schema.get("items"), value.as_array()) {
        for (i, v) in elems.iter().enumerate() {
            validate_at(v, items, &format!("{path}[{i}]"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> ServiceRow {
        ServiceRow {
            label: "service ×2".into(),
            shards: 2,
            ingest_s: 0.5,
            records_per_s: 8000.0,
            speedup: 0.9,
            query_ms: 1.25,
            ingest_ack_p50_us: 310.0,
            ingest_ack_p99_us: 2400.0,
            query_p50_us: 900.0,
            query_p99_us: 2100.0,
            blocked_ms: 3.5,
            rejected: 0,
            counts_ok: true,
            shard_records: vec![2000, 2000],
        }
    }

    fn checked_in_schema() -> Value {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/BENCH_service.schema.json"
        );
        serde_json::from_str(&std::fs::read_to_string(path).expect("schema file checked in"))
            .expect("schema file is valid JSON")
    }

    #[test]
    fn document_round_trips_and_satisfies_the_checked_in_schema() {
        let run = run_from_rows("repro", 4000, Some(1.5), &[sample_row()]);
        let mut doc = BenchTrajectory::empty();
        doc.runs.push(run);
        let json = serde_json::to_string(&doc).unwrap();

        // Round trip through the typed structs…
        let back: BenchTrajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.runs.len(), 1);
        assert_eq!(back.runs[0].configs[0].label, "service ×2");
        assert_eq!(back.runs[0].configs[0].shard_records, vec![2000, 2000]);
        assert_eq!(back.runs[0].telemetry_overhead_pct, Some(1.5));

        // …and through the schema validator.
        let value: Value = serde_json::from_str(&json).unwrap();
        validate(&value, &checked_in_schema()).expect("emitted document matches schema");
    }

    #[test]
    fn none_overhead_is_null_and_still_valid() {
        let run = run_from_rows("bench", 4000, None, &[]);
        let json = serde_json::to_string(&BenchTrajectory {
            schema_version: SCHEMA_VERSION,
            runs: vec![run],
        })
        .unwrap();
        assert!(json.contains("\"telemetry_overhead_pct\":null"));
        let value: Value = serde_json::from_str(&json).unwrap();
        validate(&value, &checked_in_schema()).expect("null overhead is schema-legal");
    }

    #[test]
    fn validator_reports_type_and_missing_field_violations() {
        let schema = checked_in_schema();
        let bad: Value =
            serde_json::from_str(r#"{"schema_version":"one","runs":[{"source":5}]}"#).unwrap();
        let errors = validate(&bad, &schema).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("schema_version")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("missing required")),
            "{errors:?}"
        );
    }

    fn sample_hotpath_row() -> HotpathRow {
        HotpathRow {
            name: "search/memmem_swar".into(),
            group: "search".into(),
            median_ns: 1000.0,
            baseline_ns: 4000.0,
            speedup: 4.0,
            throughput_mb_s: 4000.0,
            gated: true,
        }
    }

    fn checked_in_hotpath_schema() -> Value {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/BENCH_hotpath.schema.json"
        );
        serde_json::from_str(&std::fs::read_to_string(path).expect("schema file checked in"))
            .expect("schema file is valid JSON")
    }

    #[test]
    fn hotpath_document_round_trips_and_satisfies_the_checked_in_schema() {
        let run = hotpath_run_from_rows("repro", 4000, vec![sample_hotpath_row()]);
        let mut doc = HotpathTrajectory::empty();
        doc.runs.push(run);
        let json = serde_json::to_string(&doc).unwrap();

        let back: HotpathTrajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.runs[0].rows[0].name, "search/memmem_swar");
        assert!(back.runs[0].rows[0].gated);

        let value: Value = serde_json::from_str(&json).unwrap();
        validate(&value, &checked_in_hotpath_schema()).expect("emitted document matches schema");
    }

    #[test]
    fn hotpath_schema_rejects_a_malformed_row() {
        let bad: Value = serde_json::from_str(
            r#"{"schema_version":1,"runs":[{"source":"repro","unix_time_s":0,"records":0,
                "cores":1,"rows":[{"name":"x","group":"g","median_ns":"fast"}]}]}"#,
        )
        .unwrap();
        let errors = validate(&bad, &checked_in_hotpath_schema()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("median_ns")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("missing required")),
            "{errors:?}"
        );
    }

    #[test]
    fn hotpath_append_accumulates_and_validates() {
        let path = std::env::temp_dir().join(format!(
            "ciao_bench_hotpath_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let one = append_hotpath_run(
            &path,
            hotpath_run_from_rows("repro", 100, vec![sample_hotpath_row()]),
        )
        .unwrap();
        assert_eq!(one.runs.len(), 1);
        let two = append_hotpath_run(&path, hotpath_run_from_rows("bench", 100, vec![])).unwrap();
        assert_eq!(two.runs.len(), 2);
        assert_eq!(two.runs[1].source, "bench");

        let schema = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/BENCH_hotpath.schema.json"
        );
        validate_files(&path, Path::new(schema)).unwrap();
        let read_back = read_hotpath(&path).unwrap();
        assert_eq!(read_back.runs.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_accumulates_runs_across_invocations() {
        let path = std::env::temp_dir().join(format!(
            "ciao_bench_trajectory_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let one = append_run(&path, run_from_rows("repro", 100, None, &[sample_row()])).unwrap();
        assert_eq!(one.runs.len(), 1);
        let two = append_run(&path, run_from_rows("bench", 100, Some(0.5), &[])).unwrap();
        assert_eq!(two.runs.len(), 2);
        assert_eq!(two.runs[0].source, "repro");
        assert_eq!(two.runs[1].source, "bench");

        // The file on disk validates end to end.
        let schema = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/BENCH_service.schema.json"
        );
        validate_files(&path, Path::new(schema)).unwrap();

        // A corrupt file starts fresh instead of wedging the bench.
        std::fs::write(&path, "not json").unwrap();
        let fresh = append_run(&path, run_from_rows("repro", 100, None, &[])).unwrap();
        assert_eq!(fresh.runs.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
