//! Vendored subset of the `bytes` crate: `Bytes`, `BytesMut`, and the
//! `Buf`/`BufMut` traits, covering the little-endian accessors the CIAO
//! wire formats use. Contiguous `Vec<u8>` storage throughout — the
//! zero-copy rope machinery of the real crate is not reproduced.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous immutable byte buffer.
///
/// Reading through [`Buf`] advances an internal cursor, mirroring how
/// the real `Bytes` consumes its front.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
        }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(data),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-5);
        buf.put_f64_le(2.5);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        let mut out = [0u8; 2];
        s.copy_to_slice(&mut out);
        assert_eq!(out, [2, 3]);
        assert_eq!(s.remaining(), 1);
    }
}
