//! Vendored subset of `rand` 0.8: `StdRng` + `SeedableRng` +
//! `Rng::{gen, gen_range, gen_bool}` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic per seed, which is all the
//! CIAO experiments need (every experiment seeds explicitly; there is
//! deliberately no `thread_rng`/OS entropy here).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Low-level uniform word source.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type samplable uniformly from a range (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against landing exactly on `end` through rounding.
                if v >= self.end as f64 {
                    self.start
                } else {
                    v as $t
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Types `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn int_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
