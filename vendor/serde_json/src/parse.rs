//! Strict RFC 8259 parser producing a `serde::Node` tree.

use crate::{Error, Result};
use serde::Node;

/// Parses one complete JSON document (no trailing garbage).
pub fn parse_node(text: &str) -> Result<Node> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let node = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(node)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, node: Node) -> Result<Node> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(node)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Node> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Node::Null),
            Some(b't') => self.literal("true", Node::Bool(true)),
            Some(b'f') => self.literal("false", Node::Bool(false)),
            Some(b'"') => self.string().map(Node::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Node> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Node::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Node::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Node> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Node::Map(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Node::Map(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so slices on char runs are valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input was valid UTF-8"),
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = match hi {
                                0xD800..=0xDBFF => {
                                    // High surrogate: require a paired low one.
                                    if self.peek() == Some(b'\\') {
                                        self.pos += 1;
                                        if self.peek() != Some(b'u') {
                                            return Err(self.err("unpaired surrogate"));
                                        }
                                        self.pos += 1;
                                        let lo = self.hex4()?;
                                        if !(0xDC00..=0xDFFF).contains(&lo) {
                                            return Err(self.err("unpaired surrogate"));
                                        }
                                        let c = 0x10000
                                            + ((u32::from(hi) - 0xD800) << 10)
                                            + (u32::from(lo) - 0xDC00);
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?
                                    } else {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unexpected low surrogate")),
                                _ => char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                // Unescaped control character.
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn number(&mut self) -> Result<Node> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            let digits = &text[usize::from(neg)..];
            if neg {
                // `-0` becomes the float -0.0 so it round-trips, exactly
                // like real serde_json.
                if digits == "0" {
                    return Ok(Node::Float(-0.0));
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Node::Int(v));
                }
            } else if let Ok(v) = digits.parse::<u64>() {
                return Ok(match i64::try_from(v) {
                    Ok(i) => Node::Int(i),
                    Err(_) => Node::UInt(v),
                });
            }
        }
        // Floats, and integers too large for u64/i64.
        let v: f64 = text
            .parse()
            .map_err(|_| self.err("number out of representable range"))?;
        if v.is_finite() {
            Ok(Node::Float(v))
        } else {
            Err(self.err("number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_node;
    use serde::Node;

    #[test]
    fn strictness() {
        for bad in [
            "",
            "01",
            "+1",
            ".5",
            "5.",
            "1e",
            "1e+",
            "{",
            "[",
            "\"abc",
            "[1,]",
            "{\"a\":}",
            "nul",
            "tru",
            "1 2",
            "[1] x",
            "\"\\x\"",
            "\"\\ud800\"",
            "\"a\nb\"",
            "--1",
            "-",
        ] {
            assert!(parse_node(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_node("0").unwrap(), Node::Int(0));
        assert_eq!(parse_node("-7").unwrap(), Node::Int(-7));
        assert_eq!(
            parse_node("18446744073709551615").unwrap(),
            Node::UInt(u64::MAX)
        );
        assert_eq!(parse_node("1e300").unwrap(), Node::Float(1e300));
        assert_eq!(parse_node("1E+2").unwrap(), Node::Float(100.0));
        assert_eq!(parse_node("0.001").unwrap(), Node::Float(0.001));
        // -0 is a float so the sign survives, like real serde_json.
        match parse_node("-0").unwrap() {
            Node::Float(f) => assert!(f == 0.0 && f.is_sign_negative()),
            other => panic!("-0 parsed as {other:?}"),
        }
        // Bignum integers widen to float.
        assert_eq!(
            parse_node("123456789012345678901234567890").unwrap(),
            Node::Float(1.2345678901234568e29)
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            parse_node(r#""\\\"\/\b\f\n\r\t""#).unwrap(),
            Node::Str("\\\"/\u{8}\u{c}\n\r\t".to_string())
        );
        assert_eq!(
            parse_node(r#""\ud83d\ude00é""#).unwrap(),
            Node::Str("😀é".to_string())
        );
        assert_eq!(parse_node("\"😀\"").unwrap(), Node::Str("😀".to_string()));
    }

    #[test]
    fn containers() {
        let doc = r#"{"a":[1,true,null],"a":2}"#;
        match parse_node(doc).unwrap() {
            Node::Map(pairs) => assert_eq!(pairs.len(), 2, "parser keeps every pair"),
            other => panic!("{other:?}"),
        }
    }
}
