//! Compact JSON writer over a `serde::Node` tree.

use serde::Node;
use std::fmt::Write;

/// Formats a float the way real serde_json (via ryu) presents it:
/// shortest round-trip decimal, with a `.0` suffix when the shortest
/// form would read as an integer. Non-finite values render as `null`,
/// matching serde_json's writer.
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let mut s = format!("{v}");
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    s
}

pub fn write_node(node: &Node) -> String {
    let mut out = String::new();
    write_into(&mut out, node);
    out
}

fn write_into(out: &mut String, node: &Node) {
    match node {
        Node::Null => out.push_str("null"),
        Node::Bool(true) => out.push_str("true"),
        Node::Bool(false) => out.push_str("false"),
        Node::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Node::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Node::Float(f) => out.push_str(&format_f64(*f)),
        Node::Str(s) => write_escaped(out, s),
        Node::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(out, item);
            }
            out.push(']');
        }
        Node::Map(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_into(out, v);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_node;

    #[test]
    fn floats_match_serde_json_style() {
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(0.001), "0.001");
        assert_eq!(format_f64(-2.5), "-2.5");
        assert_eq!(format_f64(1e300), format!("{}.0", 1e300));
        assert_eq!(format_f64(1e300).parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn roundtrip_through_writer() {
        for doc in [
            r#"{"a":[[],{},[{}]],"b":"A😀","c":0.001}"#,
            "[true,false,null]",
            r#""\\\"/\b\f\n\r\t""#,
            "[0,-7,1.5]",
        ] {
            let node = parse_node(doc).unwrap();
            let text = write_node(&node);
            assert_eq!(
                parse_node(&text).unwrap(),
                node,
                "unstable roundtrip: {doc}"
            );
        }
    }
}
