//! Vendored subset of `serde_json`: `Value`, `from_str`, `to_string`.
//!
//! This crate is used as a *reference oracle* in the workspace's
//! differential tests, so the parser is strict RFC 8259: no trailing
//! garbage, no leading zeros, no control characters in strings, paired
//! surrogate escapes only. Number representation follows real
//! serde_json: integers that fit `u64`/`i64` stay integers (`-0`
//! becomes the float `-0.0` so it round-trips), everything else is
//! `f64`.

mod parse;
mod write;

pub use parse::parse_node;

use serde::{de, Deserialize, Deserializer, Node, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Map type used for objects. Ordered by key, duplicate keys keep the
/// last value — both matching real serde_json's default.
pub type Map<K, V> = BTreeMap<K, V>;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object map, when this value is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, when this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view, when this value is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Float view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

/// A JSON number: integer when it fits, float otherwise.
#[derive(Clone, Copy, Debug)]
pub struct Number(N);

impl Number {
    pub(crate) fn pos(v: u64) -> Number {
        Number(N::PosInt(v))
    }

    pub(crate) fn neg(v: i64) -> Number {
        Number(N::NegInt(v))
    }

    /// Builds a float number; `None` for non-finite input (mirroring
    /// real serde_json's `Number::from_f64`).
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(N::Float(v)))
    }

    /// Signed-integer view; `None` for floats and out-of-range values.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            N::NegInt(v) => u64::try_from(v).ok(),
            N::Float(_) => None,
        }
    }

    /// Lossy float view (always `Some` — every stored number has one;
    /// the `Option` matches real serde_json's signature).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        })
    }

    /// Whether the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            (N::PosInt(a), N::NegInt(b)) | (N::NegInt(b), N::PosInt(a)) => {
                i64::try_from(a) == Ok(b)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => f.write_str(&crate::write::format_f64(v)),
        }
    }
}

/// Errors from parsing or serializing JSON.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error::new(msg.to_string())
    }
}

/// Convenience alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

fn node_to_value(node: Node) -> Value {
    match node {
        Node::Null => Value::Null,
        Node::Bool(b) => Value::Bool(b),
        Node::Int(i) => Value::Number(if i < 0 {
            Number::neg(i)
        } else {
            Number::pos(i as u64)
        }),
        Node::UInt(u) => Value::Number(Number::pos(u)),
        Node::Float(f) => Value::Number(Number(N::Float(f))),
        Node::Str(s) => Value::String(s),
        Node::Seq(items) => Value::Array(items.into_iter().map(node_to_value).collect()),
        Node::Map(pairs) => Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k, node_to_value(v)))
                .collect(),
        ),
    }
}

fn value_to_node(value: &Value) -> Node {
    match value {
        Value::Null => Node::Null,
        Value::Bool(b) => Node::Bool(*b),
        Value::Number(n) => match n.0 {
            N::PosInt(v) => match i64::try_from(v) {
                Ok(i) => Node::Int(i),
                Err(_) => Node::UInt(v),
            },
            N::NegInt(v) => Node::Int(v),
            N::Float(v) => Node::Float(v),
        },
        Value::String(s) => Node::Str(s.clone()),
        Value::Array(items) => Node::Seq(items.iter().map(value_to_node).collect()),
        Value::Object(map) => Node::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_node(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_node(value_to_node(self))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        Ok(node_to_value(deserializer.read_node()?))
    }
}

/// The text-input deserializer handed to `Deserialize` impls.
struct JsonDeserializer<'a> {
    text: &'a str,
}

impl<'de> Deserializer<'de> for JsonDeserializer<'_> {
    type Error = Error;

    fn read_node(self) -> Result<Node> {
        parse::parse_node(self.text)
    }
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    T::deserialize(JsonDeserializer { text })
}

/// Serializes any serializable value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write::write_node(&serde::to_node(value)))
}
