//! Vendored subset of `parking_lot`: a `Mutex` whose `lock()` does not
//! return a poisoning `Result`. Backed by `std::sync::Mutex`; on poison
//! (a panicking holder) the inner value is recovered, matching
//! parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion primitive; `lock()` never returns `Err`.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
