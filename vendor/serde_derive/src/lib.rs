//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! serde subset. Written directly against `proc_macro` token trees
//! (`syn`/`quote` are not vendored): the input item is parsed into
//! field/variant names, and the generated impl routes through
//! `serde::Node` — structs become maps, enums are externally tagged
//! like real serde (`{"Variant": {...}}`, unit variants as `"Variant"`).
//!
//! Supported shapes: structs with named fields, unit structs, and enums
//! whose variants are unit, tuple, or struct-like. Generics and
//! `#[serde(...)]` attributes are not supported and produce a compile
//! error rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
struct Input {
    name: String,
    data: Data,
}

#[derive(Debug)]
enum Data {
    Struct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading `#[...]` attributes.
fn skip_attributes(iter: &mut TokenIter) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.peek() {
            if g.delimiter() == Delimiter::Bracket {
                iter.next();
                continue;
            }
        }
        break;
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Parses `name: Type` fields from the inside of a brace group,
/// returning field names in declaration order. Commas inside angle
/// brackets (`HashMap<String, u64>`) are tracked so they do not split
/// fields; bracketed types (`[f64; 4]`) arrive as atomic groups.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter: TokenIter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the fields of a tuple variant from its paren group contents.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter: TokenIter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter: TokenIter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde subset derive does not support generics on `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                data: Data::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                data: Data::UnitStruct,
            }),
            _ => Err(format!(
                "serde subset derive supports only named-field structs (`{name}`)"
            )),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                data: Data::Enum(parse_variants(g.stream())?),
            }),
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive serde impls for `{other}` items")),
    }
}

const DE_ERR: &str = "<D::Error as ::serde::de::Error>::custom";

/// Expression extracting field `f` from `__pairs` (a `&[(String, Node)]`).
fn field_from_map(container: &str, field: &str) -> String {
    format!(
        "{{ let __v = __pairs.iter().find(|(__k, _)| __k == {field:?}).map(|(_, __v)| __v)\
           .ok_or_else(|| {DE_ERR}(\"missing field `{field}` in `{container}`\"))?;\
           ::serde::from_node(__v).map_err({DE_ERR})? }}"
    )
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::UnitStruct => "serializer.serialize_node(::serde::Node::Null)".to_string(),
        Data::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::to_node(&self.{f})),"))
                .collect();
            format!("serializer.serialize_node(::serde::Node::Map(vec![{pairs}]))")
        }
        Data::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serializer.serialize_node(\
                             ::serde::Node::Str({vname:?}.to_string())),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let bind = binders.join(", ");
                            let content = if *n == 1 {
                                "::serde::to_node(__f0)".to_string()
                            } else {
                                let items: String = binders
                                    .iter()
                                    .map(|b| format!("::serde::to_node({b}),"))
                                    .collect();
                                format!("::serde::Node::Seq(vec![{items}])")
                            };
                            format!(
                                "{name}::{vname}({bind}) => serializer.serialize_node(\
                                 ::serde::Node::Map(vec![({vname:?}.to_string(), {content})])),"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let bind = fields.join(", ");
                            let pairs: String = fields
                                .iter()
                                .map(|f| format!("({f:?}.to_string(), ::serde::to_node({f})),"))
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bind} }} => serializer.serialize_node(\
                                 ::serde::Node::Map(vec![({vname:?}.to_string(), \
                                 ::serde::Node::Map(vec![{pairs}]))])),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S)\
             -> ::core::result::Result<S::Ok, S::Error> {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::UnitStruct => format!(
            "match deserializer.read_node()? {{\
               ::serde::Node::Null => ::core::result::Result::Ok({name}),\
               __other => ::core::result::Result::Err({DE_ERR}(\
                 format!(\"expected null for unit struct `{name}`, found {{}}\", __other.kind()))),\
             }}"
        ),
        Data::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: {},", field_from_map(name, f)))
                .collect();
            format!(
                "let __node = deserializer.read_node()?;\
                 let __pairs = __node.as_map().ok_or_else(|| {DE_ERR}(\
                   format!(\"expected map for struct `{name}`, found {{}}\", __node.kind())))?;\
                 ::core::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Data::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::core::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(1) => format!(
                            "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::from_node(__content).map_err({DE_ERR})?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::from_node(&__seq[{i}]).map_err({DE_ERR})?,")
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\
                                   let __seq = __content.as_seq().ok_or_else(|| {DE_ERR}(\
                                     \"expected sequence for variant `{vname}`\"))?;\
                                   if __seq.len() != {n} {{ return ::core::result::Result::Err(\
                                     {DE_ERR}(\"wrong tuple arity for variant `{vname}`\")); }}\
                                   ::core::result::Result::Ok({name}::{vname}({items}))\
                                 }}"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: {},", field_from_map(vname, f)))
                                .collect();
                            format!(
                                "{vname:?} => {{\
                                   let __pairs = __content.as_map().ok_or_else(|| {DE_ERR}(\
                                     \"expected map for variant `{vname}`\"))?;\
                                   ::core::result::Result::Ok({name}::{vname} {{ {inits} }})\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match deserializer.read_node()? {{\
                   ::serde::Node::Str(__s) => match __s.as_str() {{\
                     {unit_arms}\
                     __other => ::core::result::Result::Err({DE_ERR}(\
                       format!(\"unknown unit variant `{{__other}}` for enum `{name}`\"))),\
                   }},\
                   ::serde::Node::Map(__pairs) if __pairs.len() == 1 => {{\
                     let (__tag, __content) = &__pairs[0];\
                     match __tag.as_str() {{\
                       {tagged_arms}\
                       __other => ::core::result::Result::Err({DE_ERR}(\
                         format!(\"unknown variant `{{__other}}` for enum `{name}`\"))),\
                     }}\
                   }},\
                   __other => ::core::result::Result::Err({DE_ERR}(\
                     format!(\"expected variant for enum `{name}`, found {{}}\", __other.kind()))),\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\
             -> ::core::result::Result<Self, D::Error> {{ {body} }}\
         }}"
    )
}

/// Derives `serde::Serialize` via the `Node` data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` via the `Node` data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}
