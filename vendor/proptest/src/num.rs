//! Numeric sub-strategies (`prop::num::f64::NORMAL`).

/// `f64` strategies.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    // Inside `mod f64` the module shadows the primitive in type paths.
    use core::primitive::f64 as float;

    /// Uniformly random *normal* floats: finite, non-NaN, and not
    /// subnormal — every exponent and sign equally likely, so both
    /// tiny (1e-300) and huge (1e300) magnitudes appear.
    #[derive(Clone, Copy, Debug)]
    pub struct NormalStrategy;

    /// The canonical instance.
    pub const NORMAL: NormalStrategy = NormalStrategy;

    impl Strategy for NormalStrategy {
        type Value = float;
        fn generate(&self, rng: &mut TestRng) -> float {
            loop {
                let bits = rng.gen::<u64>();
                let exponent = (bits >> 52) & 0x7FF;
                // Exponent 0 is zero/subnormal, 0x7FF is inf/NaN.
                if exponent != 0 && exponent != 0x7FF {
                    return float::from_bits(bits);
                }
            }
        }
    }
}
