//! Case execution: config, RNG, and the run loop behind `proptest!`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` filtered the input; draw another.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A filtered case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

const DEFAULT_SEED: u64 = 0xC1A0_5EED_0000_0001;

fn seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Runs `config.cases` successful cases of `test` over `strategy`.
///
/// Panics (failing the enclosing `#[test]`) on the first violated
/// assertion; there is no shrinking, so the panic message carries the
/// assertion text and the case number under the active seed.
pub fn run_cases<S, F>(config: ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = seed();
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 16 + 1024;
    while passed < config.cases {
        match test(strategy.generate(&mut rng)) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest: too many rejected cases ({rejected}) — \
                         prop_assume! filters out almost every input"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest: property failed on case {} (seed {seed:#x}): {msg}",
                    passed + 1
                );
            }
        }
    }
}
