//! `any::<T>()` — canonical full-range strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full-range finite floats (inf/NaN excluded, as most callers
        // want something arithmetic-safe).
        crate::num::f64::NORMAL.generate(rng)
    }
}
