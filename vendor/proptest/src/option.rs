//! `prop::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// `Some` with probability 1/2, like real proptest's default.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        rng.gen_bool(0.5).then(|| self.inner.generate(rng))
    }
}
