//! The `Strategy` trait and its core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking tree: a strategy is just
/// a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into a second, value-dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Builds recursive structures: `recurse` receives a strategy for
    /// the inner level and must return the next level up. `depth`
    /// bounds nesting; the size hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in so the tree does not always reach full
            // depth along every branch.
            let mixed = LeafMix {
                leaf: leaf.clone(),
                deep: level,
            }
            .boxed();
            level = recurse(mixed).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among arms (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on zero arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Recursion helper: picks the shallow strategy ~1/3 of the time.
struct LeafMix<T> {
    leaf: BoxedStrategy<T>,
    deep: BoxedStrategy<T>,
}

impl<T> Strategy for LeafMix<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        if rng.gen_bool(1.0 / 3.0) {
            self.leaf.generate(rng)
        } else {
            self.deep.generate(rng)
        }
    }
}

/// String literals are regex-lite strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed/open distinction is immaterial for uniform floats.
        rng.gen_range(*self.start()..self.end().next_up())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
