//! `prop::sample::select` — uniform choice from a fixed pool.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniformly selects one of `values` (cloned) per case.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "cannot select from an empty pool");
    Select { values }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}
