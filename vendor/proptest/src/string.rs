//! Regex-lite string generation for `&str` strategies.
//!
//! Supports the subset the workspace's tests use: a sequence of atoms,
//! each a character class `[...]` (with ranges, escapes, and literal
//! unicode) or a literal character, optionally followed by `{n}` or
//! `{m,n}`. Anything fancier panics with a clear message rather than
//! generating wrong data.

use crate::test_runner::TestRng;
use rand::Rng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![unescape(c)]
            }
            c @ ('*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$') => {
                panic!("regex feature `{c}` not supported in vendored proptest: {pattern:?}")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    if chars.get(i) == Some(&'^') {
        panic!("negated classes not supported in vendored proptest: {pattern:?}");
    }
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => return (set, i + 1),
            '\\' => {
                i += 1;
                let e = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                set.push(unescape(e));
                i += 1;
            }
            lo => {
                // Range `lo-hi` unless the `-` is trailing.
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&h| h != ']') {
                    let hi = chars[i + 2];
                    assert!(
                        (lo as u32) <= (hi as u32),
                        "inverted range {lo}-{hi} in pattern {pattern:?}"
                    );
                    for cp in (lo as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(cp) {
                            set.push(ch);
                        }
                    }
                    i += 3;
                } else {
                    set.push(lo);
                    i += 1;
                }
            }
        }
    }
}

fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .map(|off| i + off)
        .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
    let body: String = chars[i + 1..close].iter().collect();
    let parse_num = |s: &str| {
        s.trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in pattern {pattern:?}"))
    };
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (parse_num(lo), parse_num(hi)),
        None => {
            let n = parse_num(&body);
            (n, n)
        }
    };
    assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
    (min, max, close + 1)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        // `\-`, `\\`, `\.`, `\"`, `\[`, … — the character itself.
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::generate_pattern;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn class_and_quantifier() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = generate_pattern("[a-z][a-z_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let mut rng = TestRng::seed_from_u64(6);
        let allowed: Vec<char> = {
            let mut v: Vec<char> = ('a'..='z').collect();
            v.extend(['-', '"', '\\', '\n', '\t', '😀', 'é']);
            v
        };
        for _ in 0..200 {
            let s = generate_pattern("[a-z\\-\"\\\\\n\t😀é]{0,20}", &mut rng);
            assert!(s.chars().all(|c| allowed.contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn exact_sizes() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(generate_pattern("[01]{4}", &mut rng).len(), 4);
        }
    }
}
