//! Vendored subset of `proptest`: random property testing without
//! shrinking.
//!
//! What is reproduced: the `Strategy` trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, range and regex-lite
//! string-literal strategies, tuples, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `prop::num::f64::NORMAL`,
//! `any::<T>()`, and the `proptest!` / `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros.
//!
//! What is not: shrinking (a failing case panics with the message from
//! the failed assertion), persistence files, and fork/timeout runners.
//! Runs are fully deterministic per binary (fixed seed, overridable via
//! `PROPTEST_SEED`), which suits CI better than hunting a lost seed.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests over generated inputs.
///
/// Supports the standard parameter forms: `pattern in strategy` and
/// `name: Type` (shorthand for `any::<Type>()`), plus an optional
/// leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run! { $cfg; $body; (); (); $($params)* }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    // All parameters munched: run the cases.
    ($cfg:expr; $body:block; ($($pats:pat_param,)*); ($($strats:expr,)*);) => {
        let __strategy = ($($strats,)*);
        $crate::test_runner::run_cases(
            $cfg,
            &__strategy,
            |($($pats,)*)| { $body ::core::result::Result::Ok(()) },
        );
    };
    // `pattern in strategy` (last / with tail).
    ($cfg:expr; $body:block; ($($pats:pat_param,)*); ($($strats:expr,)*); $pat:pat_param in $strat:expr) => {
        $crate::__proptest_run! { $cfg; $body; ($($pats,)* $pat,); ($($strats,)* $strat,); }
    };
    ($cfg:expr; $body:block; ($($pats:pat_param,)*); ($($strats:expr,)*); $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_run! { $cfg; $body; ($($pats,)* $pat,); ($($strats,)* $strat,); $($rest)* }
    };
    // `name: Type` shorthand for any::<Type>() (last / with tail).
    ($cfg:expr; $body:block; ($($pats:pat_param,)*); ($($strats:expr,)*); $name:ident : $ty:ty) => {
        $crate::__proptest_run! {
            $cfg; $body; ($($pats,)* $name,); ($($strats,)* $crate::arbitrary::any::<$ty>(),);
        }
    };
    ($cfg:expr; $body:block; ($($pats:pat_param,)*); ($($strats:expr,)*); $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_run! {
            $cfg; $body; ($($pats,)* $name,); ($($strats,)* $crate::arbitrary::any::<$ty>(),); $($rest)*
        }
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// aborting the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
}

/// Discards the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
