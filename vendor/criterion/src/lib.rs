//! Vendored subset of `criterion`: enough to compile and *run* the
//! workspace's benches with real wall-clock measurements.
//!
//! Statistics are deliberately simple — per benchmark it reports the
//! median of `sample_size` samples (each averaging over an adaptive
//! iteration count) plus min/max, with optional throughput scaling. No
//! HTML reports, no outlier classification, no comparison to saved
//! baselines; downstream tooling records the printed numbers instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies a CLI-style substring filter (first non-flag argument),
    /// mirroring how `cargo bench -- <filter>` works with real criterion.
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        self.run_one(&id.full_name(), None, sample_size, measurement_time, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<&Throughput>,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            measurement_time,
        };
        f(&mut bencher);
        report(name, &bencher.samples, throughput);
    }
}

/// A set of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the per-benchmark time budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.full_name());
        let throughput = self.throughput.clone();
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let measurement_time = self.criterion.measurement_time;
        self.criterion
            .run_one(&name, throughput.as_ref(), sample_size, measurement_time, f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only (the group name carries the function).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Logical items per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples within the
    /// measurement budget. The routine's output is passed through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit one sample slot?
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / iters as f64);
        }
    }
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:8.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:8.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{s:8.2} s ")
    }
}

fn report(name: &str, samples: &[f64], throughput: Option<&Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" {:12.0} elem/s", *n as f64 / median),
        Some(Throughput::Bytes(n)) => {
            format!(" {:9.1} MiB/s", *n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{name:<50} median {}  [{} .. {}]{rate}",
        format_seconds(median),
        format_seconds(min),
        format_seconds(max)
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_smoke() {
        let mut c = Criterion::default().sample_size(3);
        c.measurement_time = Duration::from_millis(5);
        c.bench_function("smoke/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
