//! The owned data-model tree every value passes through.

use std::fmt;

/// A serialized value, independent of any text format.
///
/// Maps are ordered pair lists (not hash maps) so struct-field order is
/// preserved and duplicate handling is the format's choice.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Unit / null.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence (tuples, vectors, slices, arrays).
    Seq(Vec<Node>),
    /// A keyed map (structs, hash maps).
    Map(Vec<(String, Node)>),
}

impl Node {
    /// The map pairs, when this node is a map.
    pub fn as_map(&self) -> Option<&[(String, Node)]> {
        match self {
            Node::Map(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The sequence items, when this node is a sequence.
    pub fn as_seq(&self) -> Option<&[Node]> {
        match self {
            Node::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Node::Null => "null",
            Node::Bool(_) => "bool",
            Node::Int(_) => "int",
            Node::UInt(_) => "uint",
            Node::Float(_) => "float",
            Node::Str(_) => "string",
            Node::Seq(_) => "sequence",
            Node::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Node`] does not match the requested type.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl crate::de::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> DeError {
        DeError(msg.to_string())
    }
}

/// Serializer whose output *is* the node — used to lower any
/// `Serialize` value into the tree.
pub struct NodeSerializer;

impl crate::ser::Serializer for NodeSerializer {
    type Ok = Node;
    type Error = DeError; // never produced

    fn serialize_node(self, node: Node) -> Result<Node, DeError> {
        Ok(node)
    }
}

/// Lowers any serializable value to its [`Node`] tree.
pub fn to_node<T: crate::ser::Serialize + ?Sized>(value: &T) -> Node {
    value
        .serialize(NodeSerializer)
        .expect("NodeSerializer is infallible")
}

/// Deserializer that replays an owned [`Node`] tree.
pub struct NodeDeserializer(pub Node);

impl<'de> crate::de::Deserializer<'de> for NodeDeserializer {
    type Error = DeError;

    fn read_node(self) -> Result<Node, DeError> {
        Ok(self.0)
    }
}

/// Rebuilds a deserializable value from a [`Node`] tree.
pub fn from_node<T: for<'a> crate::de::Deserialize<'a>>(node: &Node) -> Result<T, DeError> {
    T::deserialize(NodeDeserializer(node.clone()))
}
