//! Serialization half: the `Serialize`/`Serializer` traits and impls
//! for the std types the workspace serializes.

use crate::node::{to_node, Node};
use std::collections::{BTreeMap, HashMap};

/// A value that can lower itself into a serializer.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format sink. In this subset a format receives the whole
/// value as one [`Node`] tree.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Serialization error.
    type Error;

    /// Consumes the finished tree.
    fn serialize_node(self, node: Node) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_node(Node::Int(*self as i64))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as u64;
                let node = match i64::try_from(v) {
                    Ok(i) => Node::Int(i),
                    Err(_) => Node::UInt(v),
                };
                serializer.serialize_node(node)
            }
        }
    )*};
}

impl_ser_uint!(u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Float(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Str(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_node(Node::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Seq(self.iter().map(to_node).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_node(Node::Seq(vec![$(to_node(&self.$idx)),+]))
            }
        }
    )*};
}

impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_node(Node::Map(
            self.iter().map(|(k, v)| (k.clone(), to_node(v))).collect(),
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort for deterministic output (HashMap iteration order varies).
        let mut pairs: Vec<(String, Node)> =
            self.iter().map(|(k, v)| (k.clone(), to_node(v))).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_node(Node::Map(pairs))
    }
}
