//! Deserialization half: `Deserialize`/`Deserializer` plus impls for
//! the std types the workspace deserializes.

use crate::node::{from_node, Node};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Errors a deserializer can produce on malformed input.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format source. In this subset a format parses its whole
/// input into one [`Node`] tree up front.
pub trait Deserializer<'de>: Sized {
    /// Deserialization error.
    type Error: Error;

    /// Parses the input into a tree.
    fn read_node(self) -> Result<Node, Self::Error>;
}

/// A value constructible from a deserializer.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn mismatch<E: Error>(expected: &str, got: &Node) -> E {
    E::custom(format_args!("expected {expected}, found {}", got.kind()))
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let node = deserializer.read_node()?;
                let v: i128 = match node {
                    Node::Int(i) => i as i128,
                    Node::UInt(u) => u as i128,
                    // Accept integral floats (JSON formats may widen).
                    Node::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => f as i128,
                    other => return Err(mismatch(stringify!($t), &other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| D::Error::custom(format_args!(
                        "integer {v} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Float(f) => Ok(f),
            Node::Int(i) => Ok(i as f64),
            Node::UInt(u) => Ok(u as f64),
            other => Err(mismatch("float", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Bool(b) => Ok(b),
            other => Err(mismatch("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Str(s) => Ok(s),
            other => Err(mismatch("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Null => Ok(()),
            other => Err(mismatch("null", &other)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Null => Ok(None),
            node => from_node(&node).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Seq(items) => items
                .iter()
                .map(|n| from_node(n).map_err(D::Error::custom))
                .collect(),
            other => Err(mismatch("sequence", &other)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            D::Error::custom(format_args!("expected array of length {N}, found {len}"))
        })
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal: $($name:ident . $idx:tt),+))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<Der: Deserializer<'de>>(deserializer: Der) -> Result<Self, Der::Error> {
                match deserializer.read_node()? {
                    Node::Seq(items) if items.len() == $len => Ok((
                        $(from_node::<$name>(&items[$idx]).map_err(Der::Error::custom)?,)+
                    )),
                    Node::Seq(items) => Err(Der::Error::custom(format_args!(
                        "expected tuple of length {}, found sequence of {}", $len, items.len()
                    ))),
                    other => Err(mismatch("sequence", &other)),
                }
            }
        }
    )*};
}

impl_de_tuple! {
    (1: A.0)
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
    (5: A.0, B.1, C.2, D.3, E.4)
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), from_node(v).map_err(D::Error::custom)?)))
                .collect(),
            other => Err(mismatch("map", &other)),
        }
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.read_node()? {
            Node::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), from_node(v).map_err(D::Error::custom)?)))
                .collect(),
            other => Err(mismatch("map", &other)),
        }
    }
}
