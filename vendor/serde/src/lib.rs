//! Vendored subset of `serde`.
//!
//! The real serde streams through a visitor API; this subset routes
//! everything through one owned tree type, [`Node`] — a `Serialize`
//! impl builds a `Node`, a `Deserialize` impl consumes one, and a data
//! format (here: our vendored `serde_json`) converts `Node` to and from
//! text. That collapses serde's dozens of trait methods into one per
//! direction while keeping the public trait *signatures* the repo's
//! manual impls were written against (`S: Serializer` with `Ok`/`Error`
//! associated types, `D::Error: de::Error` with `custom`, …).

mod node;

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use node::{from_node, to_node, DeError, Node, NodeDeserializer};
pub use ser::{Serialize, Serializer};
// The derive macros live in their own proc-macro crate, re-exported so
// `use serde::{Serialize, Deserialize}` pulls in trait + derive, as
// with real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
